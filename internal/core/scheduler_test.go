package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"dbspinner/internal/ast"
	"dbspinner/internal/effects"
	"dbspinner/internal/parser"
	"dbspinner/internal/plan"
	"dbspinner/internal/sqltypes"
	"dbspinner/internal/storage"
)

func mustParse(t *testing.T, sql string) *ast.SelectStmt {
	t.Helper()
	stmt, err := parser.Parse(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return stmt.(*ast.SelectStmt)
}

// TestParallelStepsMatchesSequential runs the PR-VS query — whose
// pre-loop region holds two independent materializations (the CTE seed
// and the Common#1 block) — both ways and demands byte-identical rows
// and identical statistics.
func TestParallelStepsMatchesSequential(t *testing.T) {
	seq := DefaultOptions()
	par := DefaultOptions()
	par.ParallelSteps = 4
	r1, s1 := runIterative(t, newRT(t), prVSQuery, seq)
	r2, s2 := runIterative(t, newRT(t), prVSQuery, par)
	a, b := rowStrs(r1), rowStrs(r2)
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Fatalf("parallel scheduling changed the result:\nseq: %v\npar: %v", a, b)
	}
	if s1.Iterations != s2.Iterations || s1.UpdatedRows != s2.UpdatedRows ||
		s1.Renames != s2.Renames || s1.CommonBlocks != s2.CommonBlocks ||
		s1.MaterializedCells != s2.MaterializedCells {
		t.Errorf("parallel scheduling changed the statistics:\nseq: %+v\npar: %+v", s1, s2)
	}
}

// TestParallelStepsComposesWithMPP layers the step scheduler on top of
// per-step partition parallelism: each scheduled step gets its own MPP
// machine, and the result must still match the sequential single-node
// run.
func TestParallelStepsComposesWithMPP(t *testing.T) {
	seq := DefaultOptions()
	par := DefaultOptions()
	par.ParallelSteps = 4
	par.Parallel = true
	par.Parts = 4
	r1, _ := runIterative(t, newRT(t), prVSQuery, seq)
	r2, s2 := runIterative(t, newRT(t), prVSQuery, par)
	if strings.Join(rowStrs(r1), "\n") != strings.Join(rowStrs(r2), "\n") {
		t.Fatalf("scheduler+MPP changed the result:\nseq: %v\npar: %v", rowStrs(r1), rowStrs(r2))
	}
	if s2.RowsShuffled == 0 {
		t.Error("MPP run under the scheduler reported no shuffled rows; per-step machines are not being merged")
	}
}

// TestScheduleHasParallelWidth asserts the effect analysis actually
// finds exploitable width on PR-VS: the CTE seed and the Common#1
// block write disjoint slots.
func TestScheduleHasParallelWidth(t *testing.T) {
	rt := newRT(t)
	stmt := mustParse(t, prVSQuery)
	prog, err := Rewrite(stmt, rt, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Effects) != len(prog.Steps) {
		t.Fatalf("rewrite recorded %d effect sets for %d steps", len(prog.Effects), len(prog.Steps))
	}
	if prog.Schedule == nil || prog.Schedule.MaxWidth() < 2 {
		t.Fatalf("PR-VS should schedule with width >= 2, got %+v", prog.Schedule)
	}
}

// TestHandBuiltProgramRunsSequentially: no recorded schedule means the
// pc-loop, even when a worker bound is set.
func TestHandBuiltProgramRunsSequentially(t *testing.T) {
	rt := newRT(t)
	prog := &Program{
		ParallelSteps: 8,
		Parts:         1,
		Steps: []Step{
			&MaterializeStep{Into: "t", Plan: &plan.Scan{Table: "edges", Alias: "edges",
				Cols: []plan.ColInfo{{Name: "src", Type: sqltypes.Int}, {Name: "dst", Type: sqltypes.Int}}}, Parts: 1, CheckKey: -1},
		},
		Final: namedResult("t", "src", "dst"),
	}
	rows, err := prog.Run(rt, &Stats{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
}

func namedResult(name string, cols ...string) *plan.NamedResult {
	ci := make([]plan.ColInfo, len(cols))
	for i, c := range cols {
		ci[i] = plan.ColInfo{Name: c, Type: sqltypes.Int}
	}
	return &plan.NamedResult{Name: name, Alias: name, Cols: ci}
}

// TestGuardCatchesUnderDeclaredRead seeds the dynamic cross-check's
// mutant: a scheduled step whose recorded effect set omits a result it
// reads must fail the query with a violation report, not silently run
// outside its license. The undeclared read targets a result nothing
// else touches, so the run is race-free and the only fault is the
// declaration.
func TestGuardCatchesUnderDeclaredRead(t *testing.T) {
	rt := newRT(t)
	seed := storage.NewTable("seed", sqltypes.Schema{{Name: "src", Type: sqltypes.Int}}, 1)
	seed.Insert(sqltypes.Row{sqltypes.NewInt(7)})
	rt.Results.Put("seed", seed)

	steps := []Step{
		&MaterializeStep{Into: "a", Plan: namedResult("seed", "src"), Parts: 1, CheckKey: -1},
		&MaterializeStep{Into: "b", Plan: namedResult("seed", "src"), Parts: 1, CheckKey: -1},
	}
	sets := []effects.Set{
		{Reads: []string{"seed"}, Writes: []string{"a"}},
		{Writes: []string{"b"}}, // omits the seed read
	}
	prog := &Program{
		ParallelSteps: 2,
		Parts:         1,
		Steps:         steps,
		Final:         namedResult("a", "src"),
		Effects:       sets,
		Schedule:      effects.Build(sets, nil),
	}
	_, err := prog.Run(rt, &Stats{})
	if err == nil {
		t.Fatal("under-declared read ran without a violation")
	}
	if !strings.Contains(err.Error(), "violated its declared effect set") || !strings.Contains(err.Error(), "get seed") {
		t.Fatalf("unexpected error: %v", err)
	}

	// With the read declared, the same program runs clean.
	sets[1].Reads = []string{"seed"}
	prog.Schedule = effects.Build(sets, nil)
	if _, err := prog.Run(rt, &Stats{}); err != nil {
		t.Fatalf("declared program failed: %v", err)
	}
}

// funcStep is a hand-built step whose Run defers to a closure; it
// deliberately ignores the cancellation checkpoint so tests can force
// both siblings of a region to record their errors.
type funcStep struct {
	name string
	fn   func() error
}

func (s *funcStep) Explain() string { return s.name }

func (s *funcStep) Run(ctx *Context, self int) (int, error) {
	if err := s.fn(); err != nil {
		return 0, err
	}
	return self + 1, nil
}

// regionOf wraps hand-built steps in a Program plus a single flat
// region (no happens-before edges) for driving runRegion directly.
func regionOf(steps ...Step) (*Program, *effects.Region) {
	prog := &Program{
		ParallelSteps: len(steps),
		Parts:         1,
		Steps:         steps,
		Effects:       make([]effects.Set, len(steps)),
	}
	r := &effects.Region{Start: 0, N: len(steps), Succs: make([][]int, len(steps))}
	return prog, r
}

// TestRunRegionRealErrorBeatsCancellation: when one sibling reports an
// induced cancellation and another a real failure, the real failure
// must win regardless of program order or finish order — the symptom
// must never mask the cause.
func TestRunRegionRealErrorBeatsCancellation(t *testing.T) {
	rt := newRT(t)
	errReal := errors.New("disk on fire")
	// Two-way handshake: both steps are provably inside Run before
	// either returns, so neither worker is skipped by the other's
	// failure and both errors are recorded.
	in0, in1 := make(chan struct{}), make(chan struct{})
	prog, r := regionOf(
		&funcStep{name: "canceled sibling", fn: func() error {
			close(in0)
			<-in1
			return WrapCancel(context.Canceled, 3, 1, "")
		}},
		&funcStep{name: "real failure", fn: func() error {
			close(in1)
			<-in0
			return errReal
		}},
	)
	err := prog.runRegion(&Context{RT: rt, Stats: &Stats{}}, r)
	if !errors.Is(err, errReal) {
		t.Fatalf("runRegion returned %v, want the real error", err)
	}
	if !strings.Contains(err.Error(), "step 2") || !strings.Contains(err.Error(), "real failure") {
		t.Fatalf("error %q does not identify the failing step", err)
	}
}

// TestRunRegionProgramOrderBreaksTies: with two real errors, the
// program-order-first one wins deterministically, whichever goroutine
// finished first.
func TestRunRegionProgramOrderBreaksTies(t *testing.T) {
	rt := newRT(t)
	errA := errors.New("error from step one")
	errB := errors.New("error from step two")
	in0, in1 := make(chan struct{}), make(chan struct{})
	prog, r := regionOf(
		&funcStep{name: "first", fn: func() error {
			close(in0)
			<-in1
			return errA
		}},
		&funcStep{name: "second", fn: func() error {
			close(in1)
			<-in0
			return errB
		}},
	)
	err := prog.runRegion(&Context{RT: rt, Stats: &Stats{}}, r)
	if !errors.Is(err, errA) {
		t.Fatalf("runRegion returned %v, want the program-order-first error", err)
	}
	if !strings.Contains(err.Error(), "step 1") {
		t.Fatalf("error %q does not name step 1", err)
	}
}

// TestRunRegionMergesViolationsIntoError: a losing step's guard
// violations must ride along with the winning error instead of being
// dropped. Step 1 under-declares its read of seed (a violation, but it
// succeeds); step 2, ordered after it by a declared read of a, fails
// for real. The query error must carry both.
func TestRunRegionMergesViolationsIntoError(t *testing.T) {
	rt := newRT(t)
	seed := storage.NewTable("seed", sqltypes.Schema{{Name: "src", Type: sqltypes.Int}}, 1)
	seed.Insert(sqltypes.Row{sqltypes.NewInt(7)})
	rt.Results.Put("seed", seed)

	errReal := errors.New("downstream blew up")
	steps := []Step{
		&MaterializeStep{Into: "a", Plan: namedResult("seed", "src"), Parts: 1, CheckKey: -1},
		&funcStep{name: "downstream", fn: func() error { return errReal }},
	}
	sets := []effects.Set{
		{Writes: []string{"a"}},                       // omits the seed read: violation
		{Reads: []string{"a"}, Writes: []string{"b"}}, // edge a: runs after step 1
	}
	prog := &Program{
		ParallelSteps: 2,
		Parts:         1,
		Steps:         steps,
		Final:         namedResult("a", "src"),
		Effects:       sets,
		Schedule:      effects.Build(sets, nil),
	}
	_, err := prog.Run(rt, &Stats{})
	if !errors.Is(err, errReal) {
		t.Fatalf("Run returned %v, want the downstream error", err)
	}
	if !strings.Contains(err.Error(), "violated its declared effect set") ||
		!strings.Contains(err.Error(), "get seed") {
		t.Fatalf("error %q dropped the sibling's effect violation", err)
	}
}

// TestRunRegionCancellationNamesIteration: a region canceled from
// outside surfaces a structured lifecycle error carrying the iteration
// the program had reached.
func TestRunRegionCancellationNamesIteration(t *testing.T) {
	rt := newRT(t)
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	prog, r := regionOf(
		&funcStep{name: "poller", fn: func() error { return nil }},
		&funcStep{name: "sibling", fn: func() error { return nil }},
	)
	// Replace the first step with one that honors the checkpoint.
	prog.Steps[0] = &checkpointStep{}
	ctx := &Context{RT: rt, Stats: &Stats{Iterations: 7}, Ctx: cctx}
	err := prog.runRegion(ctx, r)
	if !errors.Is(err, ErrQueryCanceled) {
		t.Fatalf("runRegion returned %v, want ErrQueryCanceled", err)
	}
	var le *QueryLifecycleError
	if !errors.As(err, &le) {
		t.Fatalf("error %v is not a QueryLifecycleError", err)
	}
	if le.Iteration != 7 {
		t.Fatalf("lifecycle error names iteration %d, want 7", le.Iteration)
	}
}

type checkpointStep struct{}

func (s *checkpointStep) Explain() string { return "checkpointed" }

func (s *checkpointStep) Run(ctx *Context, self int) (int, error) {
	if err := ctx.Checkpoint(self); err != nil {
		return 0, err
	}
	return self + 1, nil
}
