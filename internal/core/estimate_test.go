package core

import (
	"strings"
	"testing"

	"dbspinner/internal/ast"
	"dbspinner/internal/parser"
)

func TestEstimateIterations(t *testing.T) {
	cases := []struct {
		term    ast.Termination
		n       int64
		exact   bool
		bounded bool
	}{
		{ast.Termination{Type: ast.TermMetadata, N: 25}, 25, true, false},
		{ast.Termination{Type: ast.TermMetadata, N: 100, CountUpdates: true}, 100, false, true},
		{ast.Termination{Type: ast.TermData, Any: true}, DefaultDataIterations, false, false},
		{ast.Termination{Type: ast.TermDelta, N: 1}, DefaultDataIterations, false, false},
	}
	for _, c := range cases {
		got := EstimateIterations(c.term)
		if got.N != c.n || got.Exact != c.exact || got.Bounded != c.bounded {
			t.Errorf("EstimateIterations(%v) = %+v", c.term, got)
		}
	}
}

func TestEstimateString(t *testing.T) {
	if s := (IterationEstimate{N: 5, Exact: true}).String(); s != "5 (exact)" {
		t.Errorf("exact = %q", s)
	}
	if s := (IterationEstimate{N: 9, Bounded: true}).String(); s != "<= 9 (update bound)" {
		t.Errorf("bounded = %q", s)
	}
	if s := (IterationEstimate{N: 10}).String(); s != "~10 (data-dependent default)" {
		t.Errorf("default = %q", s)
	}
}

func TestCostEstimate(t *testing.T) {
	rt := newRT(t)
	// Plain PR without maintenance: 1 init materialize + 10 iterations
	// x 1 body materialize = 11.
	stmt, _ := parser.Parse(strings.Replace(prQuery, "UNTIL 2 ITERATIONS", "UNTIL 10 ITERATIONS", 1))
	opts := DefaultOptions()
	opts.CommonResults = false
	opts.IncrementalAgg = false
	prog, err := Rewrite(stmt.(*ast.SelectStmt), rt, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.CostEstimate(); got != 11 {
		t.Errorf("PR cost = %v, want 11", got)
	}
	// With incremental aggregate maintenance (the default), the body
	// materialization is charged 1 + 9*0.5 = 5.5 instead of 10:
	// init + 5.5 = 6.5.
	mopts := opts
	mopts.IncrementalAgg = true
	prog, err = Rewrite(stmt.(*ast.SelectStmt), rt, mopts)
	if err != nil {
		t.Fatal(err)
	}
	if !prog.hasMaintainStep() {
		t.Fatal("expected a MaintainAggStep in the default PR program")
	}
	if got := prog.CostEstimate(); got != 6.5 {
		t.Errorf("PR maintained cost = %v, want 6.5", got)
	}
	// SSSP (merge path) without maintenance: init + 10 x (materialize +
	// merge) = 21.
	stmt, _ = parser.Parse(strings.Replace(ssspQuery, "UNTIL 5 ITERATIONS", "UNTIL 10 ITERATIONS", 1))
	prog, err = Rewrite(stmt.(*ast.SelectStmt), rt, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.CostEstimate(); got != 21 {
		t.Errorf("SSSP cost = %v, want 21", got)
	}
	// PR-VS with common block and maintenance: init + common = 2 paid
	// once, then 3 iterations of maintained body (1 + 2*0.5 = 2) plus
	// merges (3) = 7; the common block is paid once, which is the point
	// of the Figure 9 optimization.
	stmt, _ = parser.Parse(prVSQuery)
	prog, err = Rewrite(stmt.(*ast.SelectStmt), rt, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.CostEstimate(); got != 7 {
		t.Errorf("PR-VS cost = %v, want 7", got)
	}
	// SSSP with delta iteration: the body materialize becomes a
	// DeltaMaterializeStep charged 1 + 9*0.5 = 5.5 instead of 10, so
	// 1 + 5.5 + 10 = 16.5 — the estimate now reflects the frontier
	// restriction instead of charging a full Ri scan every iteration.
	stmt, _ = parser.Parse(strings.Replace(ssspQuery, "UNTIL 5 ITERATIONS", "UNTIL 10 ITERATIONS", 1))
	dopts := opts
	dopts.DeltaIteration = true
	prog, err = Rewrite(stmt.(*ast.SelectStmt), rt, dopts)
	if err != nil {
		t.Fatal(err)
	}
	if !prog.hasDeltaStep() {
		t.Fatal("expected a DeltaMaterializeStep in the delta-iteration program")
	}
	if got := prog.CostEstimate(); got != 16.5 {
		t.Errorf("SSSP delta cost = %v, want 16.5", got)
	}
}

func TestExplainIncludesEstimate(t *testing.T) {
	rt := newRT(t)
	stmt, _ := parser.Parse(prQuery)
	prog, err := Rewrite(stmt.(*ast.SelectStmt), rt, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := prog.Explain()
	if !strings.Contains(out, "Estimated iterations: 2 (exact)") {
		t.Errorf("explain missing estimate:\n%s", out)
	}
	if !strings.Contains(out, "estimated cost:") {
		t.Errorf("explain missing cost:\n%s", out)
	}
}
