package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"dbspinner/internal/ast"
	"dbspinner/internal/exec"
	"dbspinner/internal/plan"
	"dbspinner/internal/sqltypes"
	"dbspinner/internal/storage"
)

// MaxRecursionIterations caps runaway recursive queries. It is a
// variable so tests can lower it.
var MaxRecursionIterations = 100000

// MaxRecursionRows caps the accumulated result of a recursive CTE;
// UNION ALL over a cyclic graph grows without ever repeating a working
// set, and this cap is what catches it.
var MaxRecursionRows = 10_000_000

// ExecuteRecursive evaluates a statement with recursive CTEs (ANSI
// recursive union with fixed-point semantics, §II). It exists both as
// a substrate feature and to demonstrate the paper's motivation: the
// recursive term must not contain aggregates, the termination condition
// is implicit, and rows can only be appended — exactly the limitations
// iterative CTEs remove. maxIter caps the fixed-point loop
// (Config.MaxIterations); zero or negative falls back to
// MaxRecursionIterations, and the cap fails with the same structured
// IterationCapError the iterative guard uses.
func ExecuteRecursive(stmt *ast.SelectStmt, rt *exec.StoreRuntime, parts int, maxIter int64) ([]sqltypes.Row, []plan.ColInfo, error) {
	return ExecuteRecursiveContext(context.Background(), stmt, rt, parts, maxIter)
}

// ExecuteRecursiveContext is ExecuteRecursive under a cancellation
// context: every fixed-point round polls ctx, and a fired cancellation
// or deadline surfaces as a QueryLifecycleError naming the round
// reached.
func ExecuteRecursiveContext(ctx context.Context, stmt *ast.SelectStmt, rt *exec.StoreRuntime, parts int, maxIter int64) ([]sqltypes.Row, []plan.ColInfo, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if parts < 1 {
		parts = 1
	}
	if maxIter <= 0 {
		maxIter = int64(MaxRecursionIterations)
	}
	if stmt.With == nil || !stmt.With.Recursive {
		//lint:ignore coreerrors statement-level error; no CTE, step or table is in scope yet
		return nil, nil, fmt.Errorf("statement has no recursive CTE")
	}
	created := make([]string, 0, len(stmt.With.CTEs))
	defer func() {
		for _, name := range created {
			rt.Results.Drop(name)
		}
	}()
	var regular []*ast.CTE
	for _, cte := range stmt.With.CTEs {
		if cte.Iterative {
			return nil, nil, fmt.Errorf("WITH RECURSIVE cannot contain the iterative CTE %s", cte.Name)
		}
		if !referencesSelf(cte) {
			regular = append(regular, cte)
			continue
		}
		if err := evalRecursiveCTE(ctx, cte, regular, rt, parts, maxIter); err != nil {
			return nil, nil, fmt.Errorf("recursive CTE %s: %w", cte.Name, err)
		}
		created = append(created, cte.Name)
	}
	b := plan.NewBuilder(rt)
	for _, cte := range regular {
		_ = b.RegisterCTE(cte)
	}
	final := &ast.SelectStmt{Body: stmt.Body, OrderBy: stmt.OrderBy, Limit: stmt.Limit, Offset: stmt.Offset}
	node, err := b.Build(final)
	if err != nil {
		return nil, nil, err
	}
	rows, err := exec.RunContext(ctx, node, rt, nil)
	if err != nil {
		return nil, nil, WrapCancel(err, 0, 0, "recursive CTE final query")
	}
	return rows, node.Columns(), nil
}

func referencesSelf(cte *ast.CTE) bool {
	return cte.Select != nil && ast.CountStmtTableRefs(cte.Select, cte.Name) > 0
}

// evalRecursiveCTE runs the recursive union to its fixed point and
// stores the result under the CTE name.
func evalRecursiveCTE(ctx context.Context, cte *ast.CTE, regular []*ast.CTE, rt *exec.StoreRuntime, parts int, maxIter int64) error {
	union, ok := cte.Select.Body.(*ast.UnionExpr)
	if !ok {
		return fmt.Errorf("recursive CTE %s must be 'base UNION [ALL] recursive'", cte.Name)
	}
	// The recursive reference must be in the right arm only.
	if countBody(union.Left, cte.Name) > 0 {
		return fmt.Errorf("the non-recursive arm must not reference %s", cte.Name)
	}
	nRefs := countBody(union.Right, cte.Name)
	if nRefs == 0 {
		return fmt.Errorf("the recursive arm does not reference %s", cte.Name)
	}
	if nRefs > 1 {
		return fmt.Errorf("the recursive arm may reference %s only once", cte.Name)
	}
	if bodyHasAggregate(union.Right) {
		// The ANSI restriction the paper's extension removes.
		return fmt.Errorf("aggregate functions are not allowed in the recursive part of %s; use WITH ITERATIVE", cte.Name)
	}

	newBuilder := func() *plan.Builder {
		b := plan.NewBuilder(rt)
		for _, r := range regular {
			_ = b.RegisterCTE(r)
		}
		return b
	}

	// Base step.
	basePlan, err := newBuilder().Build(&ast.SelectStmt{Body: union.Left})
	if err != nil {
		return fmt.Errorf("base term: %w", err)
	}
	baseRows, err := exec.Run(basePlan, rt, nil)
	if err != nil {
		return err
	}
	schema := plan.Schema(basePlan)
	if len(cte.Cols) > 0 {
		if len(cte.Cols) != len(schema) {
			return fmt.Errorf("CTE declares %d columns but the base term produces %d", len(cte.Cols), len(schema))
		}
		for i := range schema {
			schema[i].Name = cte.Cols[i]
		}
	}

	dedup := !union.All
	seen := make(map[sqltypes.CompositeKey]bool)
	result := storage.NewTable(cte.Name, schema, parts)
	working := storage.NewTable(cte.Name, schema, parts)
	appendRow := func(dst ...*storage.Table) func(r sqltypes.Row) {
		return func(r sqltypes.Row) {
			if dedup {
				k := sqltypes.ValuesKey(r)
				if seen[k] {
					return
				}
				seen[k] = true
			}
			for _, d := range dst {
				d.Insert(r)
			}
		}
	}
	add := appendRow(result, working)
	for _, r := range baseRows {
		add(r)
	}

	// The recursive term sees only the working table (rows produced by
	// the previous step) — standard semi-naive evaluation.
	rt.Results.Put(cte.Name, working)
	recPlan, err := newBuilder().Build(&ast.SelectStmt{Body: union.Right})
	if err != nil {
		return fmt.Errorf("recursive term: %w", err)
	}
	if len(recPlan.Columns()) != len(schema) {
		return fmt.Errorf("recursive term produces %d columns, base term %d", len(recPlan.Columns()), len(schema))
	}

	// For UNION ALL, a repeating working set means the recursion cycles
	// forever; fingerprints of past working sets detect that early.
	fingerprints := map[string]bool{}
	if !dedup {
		fingerprints[fingerprint(working)] = true
	}
	for iter := int64(0); working.Len() > 0; iter++ {
		if err := ctx.Err(); err != nil {
			return WrapCancel(err, int(iter), 0, "recursive CTE")
		}
		if iter >= maxIter {
			return &IterationCapError{CTE: cte.Name, Cap: maxIter,
				Diags: []string{"recursive UNION did not reach a fixed point (implicit termination has no static bound)"}}
		}
		rows, err := exec.RunContext(ctx, recPlan, rt, nil)
		if err != nil {
			return WrapCancel(err, int(iter), 0, "recursive CTE")
		}
		next := storage.NewTable(cte.Name, schema, parts)
		add := appendRow(result, next)
		for _, r := range rows {
			add(r)
		}
		if !dedup && next.Len() > 0 {
			fp := fingerprint(next)
			if fingerprints[fp] {
				// UNION ALL over a cycle never terminates; surface the
				// runaway instead of spinning to the cap.
				return fmt.Errorf("recursive UNION ALL does not converge (iteration %d revisits an earlier state); use UNION to deduplicate", iter+1)
			}
			fingerprints[fp] = true
		}
		if result.Len() > MaxRecursionRows {
			return fmt.Errorf("recursive CTE exceeded %d rows without terminating; use UNION to deduplicate cyclic data", MaxRecursionRows)
		}
		working = next
		rt.Results.Put(cte.Name, working)
	}

	rt.Results.Put(cte.Name, result)
	return nil
}

// fingerprint renders a table's row multiset order-independently.
func fingerprint(t *storage.Table) string {
	rows := t.AllRows()
	strs := make([]string, len(rows))
	for i, r := range rows {
		strs[i] = r.String()
	}
	sort.Strings(strs)
	return strings.Join(strs, "\x00")
}

func countBody(b ast.SelectBody, name string) int {
	stmt := &ast.SelectStmt{Body: b}
	return ast.CountStmtTableRefs(stmt, name)
}

func bodyHasAggregate(b ast.SelectBody) bool {
	switch t := b.(type) {
	case *ast.SelectCore:
		for _, it := range t.Items {
			if ast.HasAggregate(it.Expr) {
				return true
			}
		}
		if t.Having != nil || len(t.GroupBy) > 0 {
			return true
		}
		return false
	case *ast.UnionExpr:
		return bodyHasAggregate(t.Left) || bodyHasAggregate(t.Right)
	}
	return false
}

// HasIterative reports whether a statement's WITH clause contains an
// iterative CTE (the engine routes those through Rewrite).
func HasIterative(stmt *ast.SelectStmt) bool {
	if stmt.With == nil {
		return false
	}
	for _, cte := range stmt.With.CTEs {
		if cte.Iterative {
			return true
		}
	}
	return false
}
