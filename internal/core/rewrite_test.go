package core

import (
	"math"
	"strings"
	"testing"

	"dbspinner/internal/ast"
	"dbspinner/internal/catalog"
	"dbspinner/internal/exec"
	"dbspinner/internal/parser"
	"dbspinner/internal/sqltypes"
	"dbspinner/internal/storage"
)

// newRT builds a runtime with a weighted graph:
//
//	1 -> 2 (0.5), 1 -> 3 (0.5), 2 -> 3 (1.0), 3 -> 1 (1.0)
//
// and a vertexStatus table where every node is available.
func newRT(t *testing.T) *exec.StoreRuntime {
	t.Helper()
	cat := catalog.New(2)
	edges, err := cat.Create("edges", sqltypes.Schema{
		{Name: "src", Type: sqltypes.Int},
		{Name: "dst", Type: sqltypes.Int},
		{Name: "weight", Type: sqltypes.Float},
	}, -1)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []struct {
		s, d int64
		w    float64
	}{{1, 2, 0.5}, {1, 3, 0.5}, {2, 3, 1.0}, {3, 1, 1.0}} {
		edges.Insert(sqltypes.Row{sqltypes.NewInt(e.s), sqltypes.NewInt(e.d), sqltypes.NewFloat(e.w)})
	}
	vs, err := cat.Create("vertexStatus", sqltypes.Schema{
		{Name: "node", Type: sqltypes.Int},
		{Name: "status", Type: sqltypes.Int},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for n := int64(1); n <= 3; n++ {
		vs.Insert(sqltypes.Row{sqltypes.NewInt(n), sqltypes.NewInt(1)})
	}
	return exec.NewStoreRuntime(cat, storage.NewResultStore())
}

// runIterative rewrites and executes an iterative query.
func runIterative(t *testing.T, rt *exec.StoreRuntime, sql string, opts Options) ([]sqltypes.Row, *Stats) {
	t.Helper()
	stmt, err := parser.Parse(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := Rewrite(stmt.(*ast.SelectStmt), rt, opts)
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	stats := &Stats{}
	rows, err := prog.Run(rt, stats)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return rows, stats
}

func rowStrs(rows []sqltypes.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	return out
}

func TestSimpleCounterLoop(t *testing.T) {
	rt := newRT(t)
	rows, stats := runIterative(t, rt,
		`WITH ITERATIVE c (i) AS (SELECT 0 ITERATE SELECT i + 1 FROM c UNTIL 5 ITERATIONS)
		 SELECT i FROM c`, DefaultOptions())
	if len(rows) != 1 || rows[0].String() != "5" {
		t.Fatalf("rows = %v", rowStrs(rows))
	}
	if stats.Iterations != 5 {
		t.Errorf("iterations = %d", stats.Iterations)
	}
	if stats.Renames != 5 {
		t.Errorf("renames = %d (full-update query should rename every iteration)", stats.Renames)
	}
}

func TestIntermediateResultsAreDropped(t *testing.T) {
	rt := newRT(t)
	runIterative(t, rt,
		`WITH ITERATIVE c (i) AS (SELECT 0 ITERATE SELECT i + 1 FROM c UNTIL 2 ITERATIONS)
		 SELECT i FROM c`, DefaultOptions())
	if n := rt.Results.Len(); n != 0 {
		t.Errorf("%d intermediate results leaked", n)
	}
}

func TestUpdatesTermination(t *testing.T) {
	rt := newRT(t)
	// One row updated per iteration; stop once cumulative updates reach 3.
	rows, stats := runIterative(t, rt,
		`WITH ITERATIVE c (i) AS (SELECT 0 ITERATE SELECT i + 1 FROM c UNTIL 3 UPDATES)
		 SELECT i FROM c`, DefaultOptions())
	if rows[0].String() != "3" {
		t.Errorf("i = %v", rowStrs(rows))
	}
	if stats.Iterations != 3 || stats.UpdatedRows != 3 {
		t.Errorf("iterations=%d updates=%d", stats.Iterations, stats.UpdatedRows)
	}
}

func TestAnyTermination(t *testing.T) {
	rt := newRT(t)
	rows, stats := runIterative(t, rt,
		`WITH ITERATIVE c (i) AS (SELECT 0 ITERATE SELECT i + 1 FROM c UNTIL ANY (i >= 4))
		 SELECT i FROM c`, DefaultOptions())
	if rows[0].String() != "4" {
		t.Errorf("i = %v", rowStrs(rows))
	}
	if stats.Iterations != 4 {
		t.Errorf("iterations = %d", stats.Iterations)
	}
}

func TestAllTermination(t *testing.T) {
	rt := newRT(t)
	// Row k=1 grows by 1, row k=2 grows by 2; ALL(v >= 4) stops when
	// the slower row reaches 4.
	rows, _ := runIterative(t, rt,
		`WITH ITERATIVE c (k, v) AS (
			SELECT 1, 0 UNION ALL SELECT 2, 0
		 ITERATE SELECT k, v + k FROM c
		 UNTIL ALL (v >= 4))
		 SELECT k, v FROM c ORDER BY k`, DefaultOptions())
	got := rowStrs(rows)
	if len(got) != 2 || got[0] != "1, 4" || got[1] != "2, 8" {
		t.Errorf("rows = %v", got)
	}
}

func TestDeltaTermination(t *testing.T) {
	rt := newRT(t)
	rows, stats := runIterative(t, rt,
		`WITH ITERATIVE c (k, v) AS (
			SELECT 1, 0 UNION ALL SELECT 2, 0
		 ITERATE SELECT k, LEAST(v + 1, 3) FROM c
		 UNTIL DELTA < 1)
		 SELECT k, v FROM c ORDER BY k`, DefaultOptions())
	got := rowStrs(rows)
	if len(got) != 2 || got[0] != "1, 3" || got[1] != "2, 3" {
		t.Errorf("rows = %v", got)
	}
	// Values change on iterations 1-3 and are stable on 4.
	if stats.Iterations != 4 {
		t.Errorf("iterations = %d, want 4", stats.Iterations)
	}
}

const prQuery = `WITH ITERATIVE PageRank (Node, Rank, Delta)
AS ( SELECT src, 0, 0.15
     FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
 ITERATE
  SELECT PageRank.node,
    PageRank.rank + PageRank.delta,
    0.85 * SUM(IncomingRank.delta * IncomingEdges.Weight)
  FROM PageRank
    LEFT JOIN edges AS IncomingEdges ON PageRank.node = IncomingEdges.dst
    LEFT JOIN PageRank AS IncomingRank ON IncomingRank.node = IncomingEdges.src
  GROUP BY PageRank.node, PageRank.rank + PageRank.delta
 UNTIL 2 ITERATIONS )
SELECT Node, Rank FROM PageRank ORDER BY Node`

func TestPageRankHandTraced(t *testing.T) {
	rt := newRT(t)
	rows, stats := runIterative(t, rt, prQuery, DefaultOptions())
	// Hand trace (see comments in newRT for the graph):
	// iter1 deltas: n1 .1275, n2 .06375, n3 .19125
	// iter2 ranks:  n1 .2775, n2 .21375, n3 .34125
	want := map[int64]float64{1: 0.2775, 2: 0.21375, 3: 0.34125}
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rowStrs(rows))
	}
	for _, r := range rows {
		node := r[0].Int()
		rank := r[1].Float()
		if math.Abs(rank-want[node]) > 1e-12 {
			t.Errorf("node %d rank = %v, want %v", node, rank, want[node])
		}
	}
	if stats.Iterations != 2 {
		t.Errorf("iterations = %d", stats.Iterations)
	}
}

func TestPageRankRenameVsCopyBackEquivalence(t *testing.T) {
	opt := DefaultOptions()
	noRename := DefaultOptions()
	noRename.UseRename = false

	r1, s1 := runIterative(t, newRT(t), prQuery, opt)
	r2, s2 := runIterative(t, newRT(t), prQuery, noRename)
	g1, g2 := rowStrs(r1), rowStrs(r2)
	if strings.Join(g1, "|") != strings.Join(g2, "|") {
		t.Errorf("rename and copy-back disagree:\n%v\n%v", g1, g2)
	}
	if s1.Renames == 0 || s1.MovedRows != 0 {
		t.Errorf("optimized: renames=%d moved=%d", s1.Renames, s1.MovedRows)
	}
	if s2.Renames != 0 || s2.MovedRows == 0 {
		t.Errorf("baseline: renames=%d moved=%d", s2.Renames, s2.MovedRows)
	}
}

const ssspQuery = `WITH ITERATIVE sssp (Node, Distance, Delta)
AS (SELECT src, 9999999, CASE WHEN src = 1 THEN 0 ELSE 9999999 END
 FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
 ITERATE
  SELECT sssp.node,
    LEAST(sssp.distance, sssp.delta),
    COALESCE(MIN(IncomingDistance.delta + IncomingEdges.weight), 9999999)
  FROM sssp
   LEFT JOIN edges AS IncomingEdges ON sssp.node = IncomingEdges.dst
   LEFT JOIN sssp AS IncomingDistance ON IncomingDistance.node = IncomingEdges.src
  WHERE IncomingDistance.Delta != 9999999
  GROUP BY sssp.node, LEAST(sssp.distance, sssp.delta)
 UNTIL 5 ITERATIONS)
SELECT Node, Distance FROM sssp ORDER BY Node`

func TestSSSPMergePath(t *testing.T) {
	// Chain graph: 1 -> 2 (w 1), 2 -> 3 (w 2), 1 -> 3 (w 5).
	cat := catalog.New(1)
	edges, _ := cat.Create("edges", sqltypes.Schema{
		{Name: "src", Type: sqltypes.Int},
		{Name: "dst", Type: sqltypes.Int},
		{Name: "weight", Type: sqltypes.Float},
	}, -1)
	for _, e := range []struct {
		s, d int64
		w    float64
	}{{1, 2, 1}, {2, 3, 2}, {1, 3, 5}} {
		edges.Insert(sqltypes.Row{sqltypes.NewInt(e.s), sqltypes.NewInt(e.d), sqltypes.NewFloat(e.w)})
	}
	rt := exec.NewStoreRuntime(cat, storage.NewResultStore())
	rows, _ := runIterative(t, rt, ssspQuery, DefaultOptions())
	got := rowStrs(rows)
	// Node 1 is never updated (no incoming reachable edges), so its
	// distance stays at the sentinel; nodes 2 and 3 converge to 1 and 3.
	want := []string{"1, 9999999", "2, 1", "3, 3"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("sssp = %v, want %v", got, want)
	}
}

func TestMergePathPreservesUnmatchedRows(t *testing.T) {
	rt := newRT(t)
	// Rows not selected by the WHERE clause keep their previous values.
	rows, _ := runIterative(t, rt,
		`WITH ITERATIVE c (k, v) AS (
			SELECT 1, 10 UNION ALL SELECT 2, 20
		 ITERATE SELECT k, v + 1 FROM c WHERE k = 1
		 UNTIL 3 ITERATIONS)
		 SELECT k, v FROM c ORDER BY k`, DefaultOptions())
	got := rowStrs(rows)
	if len(got) != 2 || got[0] != "1, 13" || got[1] != "2, 20" {
		t.Errorf("rows = %v", got)
	}
}

func TestDuplicateKeyInWorkingTable(t *testing.T) {
	rt := newRT(t)
	stmt, err := parser.Parse(
		`WITH ITERATIVE c (k, v) AS (
			SELECT 1, 0
		 ITERATE SELECT c.k, edges.weight FROM c JOIN edges ON edges.src = c.k WHERE c.k = 1
		 UNTIL 2 ITERATIONS)
		 SELECT k FROM c`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Rewrite(stmt.(*ast.SelectStmt), rt, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 has two outgoing edges, so the working table gets two rows
	// for key 1 — a run-time error per §II.
	if _, err := prog.Run(rt, nil); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("expected duplicate-key error, got %v", err)
	}
}

func TestTableIExplain(t *testing.T) {
	rt := newRT(t)
	stmt, _ := parser.Parse(prQuery)
	opts := DefaultOptions()
	opts.CommonResults = false  // plain PR has no common block
	opts.IncrementalAgg = false // Table I shows the full re-aggregation body
	prog, err := Rewrite(stmt.(*ast.SelectStmt), rt, opts)
	if err != nil {
		t.Fatal(err)
	}
	out := prog.Explain()
	// The six steps of Table I, in order.
	wantInOrder := []string{
		"Step 1: Materialize PageRank",
		"Step 2: Initialize loop operator <<Type:Metadata, N:2 iterations, Expr:NONE>>",
		"Step 3: Materialize Intermediate#PageRank",
		"Step 4: Rename Intermediate#PageRank to PageRank.",
		"Step 5: Increment loop counter by 1.",
		"Step 6: Go to step 3 if continue",
		"Final:",
	}
	pos := -1
	for _, frag := range wantInOrder {
		p := strings.Index(out, frag)
		if p < 0 {
			t.Errorf("explain missing %q:\n%s", frag, out)
			continue
		}
		if p < pos {
			t.Errorf("explain fragment %q out of order", frag)
		}
		pos = p
	}
}

const prVSQuery = `WITH ITERATIVE PageRank (Node, Rank, Delta)
AS ( SELECT src, 0, 0.15
     FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
 ITERATE
  SELECT PageRank.node,
    PageRank.rank + PageRank.delta,
    0.85 * SUM(IncomingRank.delta * IncomingEdges.Weight)
  FROM PageRank
    LEFT JOIN edges AS IncomingEdges ON PageRank.node = IncomingEdges.dst
    LEFT JOIN PageRank AS IncomingRank ON IncomingRank.node = IncomingEdges.src
    JOIN vertexStatus AS avail_pr ON avail_pr.node = IncomingEdges.dst
  WHERE avail_pr.status != 0
  GROUP BY PageRank.node, PageRank.rank + PageRank.delta
 UNTIL 3 ITERATIONS )
SELECT Node, Rank FROM PageRank ORDER BY Node`

func TestCommonResultExtraction(t *testing.T) {
	withOpt := DefaultOptions()
	withoutOpt := DefaultOptions()
	withoutOpt.CommonResults = false

	r1, s1 := runIterative(t, newRT(t), prVSQuery, withOpt)
	r2, s2 := runIterative(t, newRT(t), prVSQuery, withoutOpt)
	g1, g2 := rowStrs(r1), rowStrs(r2)
	if strings.Join(g1, "|") != strings.Join(g2, "|") {
		t.Errorf("common-result rewrite changes results:\nopt:  %v\nbase: %v", g1, g2)
	}
	if s1.CommonBlocks != 1 {
		t.Errorf("optimized CommonBlocks = %d, want 1", s1.CommonBlocks)
	}
	if s2.CommonBlocks != 0 {
		t.Errorf("baseline CommonBlocks = %d, want 0", s2.CommonBlocks)
	}
}

func TestCommonResultExplainShowsBlock(t *testing.T) {
	rt := newRT(t)
	stmt, _ := parser.Parse(prVSQuery)
	prog, err := Rewrite(stmt.(*ast.SelectStmt), rt, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := prog.Explain()
	if !strings.Contains(out, "Materialize Common#1") {
		t.Errorf("explain should contain the common block:\n%s", out)
	}
	// The common block is materialized before the loop (Figure 5).
	if strings.Index(out, "Materialize Common#1") > strings.Index(out, "Initialize loop") {
		t.Errorf("common block should precede the loop:\n%s", out)
	}
}

func TestCommonResultSkippedWhenUnavailable(t *testing.T) {
	rt := newRT(t)
	// Plain PR has no invariant join block (the self-join references
	// the CTE), so nothing is extracted even with the option on.
	_, stats := runIterative(t, rt, prQuery, DefaultOptions())
	if stats.CommonBlocks != 0 {
		t.Errorf("plain PR extracted %d common blocks", stats.CommonBlocks)
	}
}

const ffQuery = `WITH ITERATIVE forecast (node, friends, friendsPrev)
AS( SELECT src AS node, count(dst) AS friends,
      ceiling(count(dst) * (1.0-(src%10)/100.0)) AS friendsPrev
    FROM edges GROUP BY src
 ITERATE
   SELECT node AS node,
      round(cast((friends / friendsPrev) * friends AS numeric), 5) AS friends,
      friends AS friendsPrev
   FROM forecast
 UNTIL 5 ITERATIONS )
SELECT node, friends
FROM forecast WHERE MOD(node, 2) = 0
ORDER BY friends DESC LIMIT 10`

func TestFFPushdownEquivalence(t *testing.T) {
	withOpt := DefaultOptions()
	withoutOpt := DefaultOptions()
	withoutOpt.PushDownPredicates = false

	r1, _ := runIterative(t, newRT(t), ffQuery, withOpt)
	r2, _ := runIterative(t, newRT(t), ffQuery, withoutOpt)
	g1, g2 := rowStrs(r1), rowStrs(r2)
	if strings.Join(g1, "|") != strings.Join(g2, "|") {
		t.Errorf("pushdown changes results:\nopt:  %v\nbase: %v", g1, g2)
	}
	if len(g1) == 0 {
		t.Fatal("FF query returned nothing")
	}
}

func TestFFPushdownAppearsInPlan(t *testing.T) {
	rt := newRT(t)
	stmt, _ := parser.Parse(ffQuery)
	prog, err := Rewrite(stmt.(*ast.SelectStmt), rt, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := prog.Explain()
	// Step 1 (materialize R0) must contain the pushed filter.
	step2 := strings.Index(out, "Step 2")
	if step2 < 0 {
		t.Fatal("no step 2")
	}
	head := out[:step2]
	if !strings.Contains(head, "Filter") || !strings.Contains(head, "MOD") {
		t.Errorf("pushed predicate missing from R0:\n%s", head)
	}
	// And the final plan must no longer filter.
	tail := out[strings.Index(out, "Final:"):]
	if strings.Contains(tail, "MOD") {
		t.Errorf("predicate should have been removed from Qf:\n%s", tail)
	}
}

func TestPushdownRefusedForPR(t *testing.T) {
	rt := newRT(t)
	// PR's iterative part has joins and aggregates: pushing the final
	// WHERE Node = 1 predicate would be wrong, so the rewrite must not
	// do it even with the option enabled.
	q := strings.Replace(prQuery, "SELECT Node, Rank FROM PageRank ORDER BY Node",
		"SELECT Node, Rank FROM PageRank WHERE Node = 1", 1)
	stmt, _ := parser.Parse(q)
	prog, err := Rewrite(stmt.(*ast.SelectStmt), rt, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := prog.Explain()
	step2 := strings.Index(out, "Step 2")
	if strings.Contains(out[:step2], "Filter") {
		t.Errorf("PR predicate must not be pushed:\n%s", out[:step2])
	}
	// The filtered result must match running without the filter and
	// filtering by hand.
	rows, _ := runIterative(t, newRT(t), q, DefaultOptions())
	all, _ := runIterative(t, newRT(t), prQuery, DefaultOptions())
	if len(rows) != 1 || rows[0].String() != all[0].String() {
		t.Errorf("filtered PR = %v, full = %v", rowStrs(rows), rowStrs(all))
	}
}

func TestPushdownRefusedForVaryingColumn(t *testing.T) {
	rt := newRT(t)
	// friends changes every iteration; a predicate on it must stay in Qf.
	q := strings.Replace(ffQuery, "WHERE MOD(node, 2) = 0", "WHERE friends > 0", 1)
	stmt, _ := parser.Parse(q)
	prog, err := Rewrite(stmt.(*ast.SelectStmt), rt, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := prog.Explain()
	step2 := strings.Index(out, "Step 2")
	if strings.Contains(out[:step2], "friends >") {
		t.Errorf("varying-column predicate must not be pushed:\n%s", out[:step2])
	}
}

func TestPushdownRefusedForDataTermination(t *testing.T) {
	rt := newRT(t)
	q := `WITH ITERATIVE c (k, v) AS (
		SELECT src, 0 FROM edges GROUP BY src
	 ITERATE SELECT k, v + 1 FROM c
	 UNTIL ANY (v >= 2))
	 SELECT k FROM c WHERE MOD(k, 2) = 0`
	stmt, _ := parser.Parse(q)
	prog, err := Rewrite(stmt.(*ast.SelectStmt), rt, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := prog.Explain()
	step2 := strings.Index(out, "Step 2")
	if strings.Contains(out[:step2], "MOD") {
		t.Errorf("push with data termination must be refused:\n%s", out[:step2])
	}
}

// TestPushdownRefusedForUpdatesTermination: an UPDATES counter observes
// the per-iteration row counts, so filtering R0 early shrinks every
// count and delays termination (regression: the push used to be applied
// whenever the termination was Metadata, and this query ran one extra
// iteration with the filter pushed).
func TestPushdownRefusedForUpdatesTermination(t *testing.T) {
	q := `WITH ITERATIVE c (k, flag, x) AS (
		SELECT src, MOD(src, 2), 1 FROM (SELECT src FROM edges GROUP BY src)
	 ITERATE SELECT k, flag, x + 1 FROM c
	 UNTIL 5 UPDATES)
	 SELECT k, x FROM c WHERE flag = 1 ORDER BY k`
	withOpt := DefaultOptions()
	withoutOpt := DefaultOptions()
	withoutOpt.PushDownPredicates = false

	r1, s1 := runIterative(t, newRT(t), q, withOpt)
	r2, s2 := runIterative(t, newRT(t), q, withoutOpt)
	if strings.Join(rowStrs(r1), "|") != strings.Join(rowStrs(r2), "|") {
		t.Errorf("pushdown changes results under UPDATES termination:\nopt:  %v\nbase: %v", rowStrs(r1), rowStrs(r2))
	}
	if s1.Iterations != s2.Iterations {
		t.Errorf("pushdown changes the iteration count: %d vs %d", s1.Iterations, s2.Iterations)
	}

	// The predicate must stay in Qf (nothing recorded as pushed).
	stmt, _ := parser.Parse(q)
	prog, err := Rewrite(stmt.(*ast.SelectStmt), newRT(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Pushed) != 0 {
		t.Errorf("predicate pushed under UPDATES termination: %v", prog.Pushed)
	}
}

func TestMultipleIterativeCTEs(t *testing.T) {
	rt := newRT(t)
	rows, _ := runIterative(t, rt,
		`WITH ITERATIVE a (x) AS (SELECT 1 ITERATE SELECT x * 2 FROM a UNTIL 3 ITERATIONS),
		       b (y) AS (SELECT 10 ITERATE SELECT y + 1 FROM b UNTIL 2 ITERATIONS)
		 SELECT a.x, b.y FROM a, b`, DefaultOptions())
	if len(rows) != 1 || rows[0].String() != "8, 12" {
		t.Fatalf("rows = %v", rowStrs(rows))
	}
}

func TestSecondCTESeesFirst(t *testing.T) {
	rt := newRT(t)
	rows, _ := runIterative(t, rt,
		`WITH ITERATIVE a (x) AS (SELECT 1 ITERATE SELECT x * 2 FROM a UNTIL 3 ITERATIONS),
		       b (y) AS (SELECT x FROM a ITERATE SELECT y + 1 FROM b UNTIL 2 ITERATIONS)
		 SELECT y FROM b`, DefaultOptions())
	// a converges to 8; b starts there and adds 2.
	if len(rows) != 1 || rows[0].String() != "10" {
		t.Errorf("rows = %v", rowStrs(rows))
	}
}

func TestRegularAndIterativeCTEsMix(t *testing.T) {
	rt := newRT(t)
	rows, _ := runIterative(t, rt,
		`WITH ITERATIVE nodes (id) AS (SELECT src FROM edges UNION SELECT dst FROM edges),
		       c (n) AS (SELECT COUNT(*) FROM nodes ITERATE SELECT n + 1 FROM c UNTIL 2 ITERATIONS)
		 SELECT n FROM c`, DefaultOptions())
	if len(rows) != 1 || rows[0].String() != "5" {
		t.Errorf("rows = %v (3 nodes + 2 iterations)", rowStrs(rows))
	}
}

func TestRewriteErrors(t *testing.T) {
	rt := newRT(t)
	bad := []string{
		// Arity mismatch between Ri and the CTE.
		`WITH ITERATIVE c (a, b) AS (SELECT 1, 2 ITERATE SELECT a FROM c UNTIL 2 ITERATIONS) SELECT * FROM c`,
		// Column list mismatch with R0.
		`WITH ITERATIVE c (a, b, x) AS (SELECT 1, 2 ITERATE SELECT a, b FROM c UNTIL 2 ITERATIONS) SELECT * FROM c`,
		// Unknown table in R0.
		`WITH ITERATIVE c (a) AS (SELECT z FROM missing ITERATE SELECT a FROM c UNTIL 2 ITERATIONS) SELECT * FROM c`,
	}
	for _, q := range bad {
		stmt, err := parser.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if _, err := Rewrite(stmt.(*ast.SelectStmt), rt, DefaultOptions()); err == nil {
			t.Errorf("Rewrite(%q) should fail", q)
		}
	}
	// No iterative CTE at all.
	stmt, _ := parser.Parse("WITH x AS (SELECT 1) SELECT * FROM x")
	if _, err := Rewrite(stmt.(*ast.SelectStmt), rt, DefaultOptions()); err == nil {
		t.Error("Rewrite without iterative CTE should fail")
	}
	stmt, _ = parser.Parse("SELECT 1")
	if _, err := Rewrite(stmt.(*ast.SelectStmt), rt, DefaultOptions()); err == nil {
		t.Error("Rewrite without WITH should fail")
	}
}

func TestProgramReRun(t *testing.T) {
	// Programs are re-runnable (benchmarks execute them repeatedly).
	rt := newRT(t)
	stmt, _ := parser.Parse(prQuery)
	prog, err := Rewrite(stmt.(*ast.SelectStmt), rt, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var first string
	for i := 0; i < 3; i++ {
		rows, err := prog.Run(rt, nil)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		s := strings.Join(rowStrs(rows), "|")
		if first == "" {
			first = s
		} else if s != first {
			t.Fatalf("run %d differs: %s vs %s", i, s, first)
		}
	}
}
