package core

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"dbspinner/internal/ast"
	"dbspinner/internal/catalog"
	"dbspinner/internal/exec"
	"dbspinner/internal/parser"
	"dbspinner/internal/sqltypes"
	"dbspinner/internal/storage"
)

// linearRecurrence describes a randomly generated iterative query
//
//	WITH ITERATIVE c (k, v) AS (
//	    <n seed rows>
//	  ITERATE SELECT k, v * a + b + k * g FROM c
//	  UNTIL <iters> ITERATIONS )
//	SELECT k, v FROM c ORDER BY k
//
// whose expected result is computed directly in Go. It exercises the
// full rewrite/loop/rename pipeline on arbitrary shapes.
type linearRecurrence struct {
	seeds   []float64
	a, b, g float64
	iters   int
}

func randomRecurrence(rng *rand.Rand) linearRecurrence {
	n := 1 + rng.Intn(5)
	seeds := make([]float64, n)
	for i := range seeds {
		seeds[i] = float64(rng.Intn(20) - 10)
	}
	return linearRecurrence{
		seeds: seeds,
		a:     float64(rng.Intn(3)) + 0.5, // 0.5, 1.5, 2.5
		b:     float64(rng.Intn(7) - 3),
		g:     float64(rng.Intn(3)),
		iters: 1 + rng.Intn(6),
	}
}

func (lr linearRecurrence) sql() string {
	var seeds []string
	for i, s := range lr.seeds {
		seeds = append(seeds, fmt.Sprintf("SELECT %d, %s", i+1, floatLit(s)))
	}
	return fmt.Sprintf(`WITH ITERATIVE c (k, v) AS (
		%s
	 ITERATE SELECT k, v * %s + %s + k * %s FROM c
	 UNTIL %d ITERATIONS)
	 SELECT k, v FROM c ORDER BY k`,
		strings.Join(seeds, " UNION ALL "),
		floatLit(lr.a), floatLit(lr.b), floatLit(lr.g), lr.iters)
}

func floatLit(f float64) string {
	s := fmt.Sprintf("%g", f)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	if f < 0 {
		return "(0 " + s + ")" // avoid unary-minus literal printing concerns
	}
	return s
}

func (lr linearRecurrence) expected() []float64 {
	out := append([]float64(nil), lr.seeds...)
	for it := 0; it < lr.iters; it++ {
		for k := range out {
			out[k] = out[k]*lr.a + lr.b + float64(k+1)*lr.g
		}
	}
	return out
}

func TestRandomLinearRecurrences(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		lr := randomRecurrence(rng)
		sql := strings.ReplaceAll(lr.sql(), "(0 -", "(0 -") // no-op; keep literal shape
		stmt, err := parser.Parse(sql)
		if err != nil {
			t.Fatalf("trial %d parse: %v\n%s", trial, err, sql)
		}
		cat := catalog.New(2)
		rt := exec.NewStoreRuntime(cat, storage.NewResultStore())
		for _, opts := range []Options{
			DefaultOptions(),
			{UseRename: false, CommonResults: true, PushDownPredicates: true, Parts: 2},
		} {
			prog, err := Rewrite(stmt.(*ast.SelectStmt), rt, opts)
			if err != nil {
				t.Fatalf("trial %d rewrite: %v\n%s", trial, err, sql)
			}
			rows, err := prog.Run(rt, nil)
			if err != nil {
				t.Fatalf("trial %d run: %v\n%s", trial, err, sql)
			}
			want := lr.expected()
			if len(rows) != len(want) {
				t.Fatalf("trial %d: %d rows, want %d", trial, len(rows), len(want))
			}
			for i, row := range rows {
				got := row[1].Float()
				if math.Abs(got-want[i]) > 1e-9*(1+math.Abs(want[i])) {
					t.Fatalf("trial %d row %d: got %v want %v (rename=%v)\n%s",
						trial, i, got, want[i], opts.UseRename, sql)
				}
			}
			if rt.Results.Len() != 0 {
				t.Fatalf("trial %d leaked %d results", trial, rt.Results.Len())
			}
		}
	}
}

func TestFailedProgramLeaksNothing(t *testing.T) {
	rt := newRT(t)
	stmt, err := parser.Parse(
		`WITH ITERATIVE c (k, v) AS (
			SELECT 1, 0
		 ITERATE SELECT c.k, edges.weight FROM c JOIN edges ON edges.src = c.k WHERE c.k = 1
		 UNTIL 2 ITERATIONS)
		 SELECT k FROM c`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Rewrite(stmt.(*ast.SelectStmt), rt, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Run(rt, nil); err == nil {
		t.Fatal("expected duplicate-key failure")
	}
	if rt.Results.Len() != 0 {
		t.Errorf("failed program leaked %d intermediate results", rt.Results.Len())
	}
}

func TestRuntimeErrorMidIterationLeaksNothing(t *testing.T) {
	rt := newRT(t)
	// v walks 3 -> 5 -> 2 -> 10 -> 1 -> division by zero (v-1 = 0) on
	// iteration 5.
	stmt, err := parser.Parse(
		`WITH ITERATIVE c (k, v) AS (
			SELECT 1, 3
		 ITERATE SELECT k, 10 / (v - 1) FROM c
		 UNTIL 10 ITERATIONS)
		 SELECT v FROM c`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Rewrite(stmt.(*ast.SelectStmt), rt, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, err = prog.Run(rt, nil)
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("expected division by zero, got %v", err)
	}
	if rt.Results.Len() != 0 {
		t.Errorf("leaked %d results after runtime error", rt.Results.Len())
	}
}

func TestUpdatesTerminationMultiRow(t *testing.T) {
	rt := newRT(t)
	// Each iteration updates 3 rows; UNTIL 7 UPDATES stops after the
	// iteration that crosses the threshold (ceil(7/3) = 3 iterations).
	rows, stats := runIterative(t, rt,
		`WITH ITERATIVE c (k, v) AS (
			SELECT 1, 0 UNION ALL SELECT 2, 0 UNION ALL SELECT 3, 0
		 ITERATE SELECT k, v + 1 FROM c
		 UNTIL 7 UPDATES)
		 SELECT v FROM c ORDER BY k`, DefaultOptions())
	if stats.Iterations != 3 {
		t.Errorf("iterations = %d, want 3", stats.Iterations)
	}
	for _, r := range rows {
		if r[0].Int() != 3 {
			t.Errorf("v = %v, want 3", r[0])
		}
	}
}

func TestDeltaSnapshotSeesKeyChanges(t *testing.T) {
	rt := newRT(t)
	// A row's key flips back and forth; delta must count it as changed
	// (both the disappearing old key and the appearing new one).
	_, stats := runIterative(t, rt,
		`WITH ITERATIVE c (k, v) AS (
			SELECT 1, 0
		 ITERATE SELECT k, LEAST(v + 1, 2) FROM c
		 UNTIL DELTA < 1)
		 SELECT k, v FROM c`, DefaultOptions())
	if stats.Iterations != 3 {
		t.Errorf("iterations = %d, want 3 (changes on 1,2; stable on 3)", stats.Iterations)
	}
	_ = sqltypes.NullValue
}
