package core

// Column-level dataflow consumers (Options.ColumnPruning). The analysis
// itself lives in internal/dataflow; this file applies its two results
// to the rewrite: projection pruning of the CTE schema family, and
// liveness-driven truncation of finished intermediate results. Both are
// re-checked independently by internal/verify (pruned-column-use,
// premature-truncate) — the optimizer is never trusted on its own
// record.

import (
	"sort"
	"strings"

	"dbspinner/internal/ast"
	"dbspinner/internal/dataflow"
	"dbspinner/internal/plan"
	"dbspinner/internal/sqltypes"
)

// noteDataflow records one analysis result on the program for EXPLAIN.
func (r *rewriter) noteDataflow(result string, live, pruned []string) {
	r.prog.Dataflow = append(r.prog.Dataflow, DataflowEntry{Result: result, Live: live, Pruned: pruned})
}

// pruneCTEColumns runs the live-column analysis for one iterative CTE
// and, when columns are provably dead, narrows R0's plan, the CTE
// schema and the iterative statement to the live positions. Column 0
// always survives (merge key, partitioning column), and the analysis
// refuses to prune under whole-row observers (UNTIL DELTA, UNTIL n
// UPDATES), so execution is observationally identical either way.
func (r *rewriter) pruneCTEColumns(cte *ast.CTE, r0 plan.Node, schema sqltypes.Schema,
	final *ast.SelectStmt, allCTEs []*ast.CTE) (plan.Node, sqltypes.Schema, *ast.SelectStmt, []string) {

	names := make([]string, len(schema))
	for i, c := range schema {
		names[i] = c.Name
	}
	// Observers: Qf plus every sibling CTE body (a later CTE may join
	// against this one's result).
	observers := []*ast.SelectStmt{final}
	for _, other := range allCTEs {
		if other == cte {
			continue
		}
		for _, s := range []*ast.SelectStmt{other.Select, other.Init, other.Iter} {
			if s != nil {
				observers = append(observers, s)
			}
		}
	}
	live := dataflow.CTELiveColumns(cte.Name, names, cte.Iter, cte.Until, observers)
	if !live.Exact || live.LiveCount() == len(schema) {
		return r0, schema, cte.Iter, nil
	}

	// Exact analysis implies a single-core Ri with one item per column.
	core := cte.Iter.Body.(*ast.SelectCore)
	cols := r0.Columns()
	var (
		items  []ast.SelectItem
		proj   []plan.ProjItem
		kept   sqltypes.Schema
		pruned []string
	)
	for i, c := range schema {
		if !live.Live[i] {
			pruned = append(pruned, c.Name)
			continue
		}
		kept = append(kept, c)
		items = append(items, core.Items[i])
		proj = append(proj, plan.ProjItem{
			Expr: &ast.ColumnRef{Table: cols[i].Table, Name: cols[i].Name},
			Name: c.Name,
			Type: c.Type,
		})
	}
	nc := *core
	nc.Items = items
	iter := &ast.SelectStmt{Body: &nc, OrderBy: cte.Iter.OrderBy, Limit: cte.Iter.Limit, Offset: cte.Iter.Offset}
	return &plan.Project{Input: r0, Items: proj}, kept, iter, pruned
}

// planResultNames collects the intermediate-result names a plan reads.
func planResultNames(n plan.Node) []string {
	var out []string
	var walk func(plan.Node)
	walk = func(n plan.Node) {
		if n == nil {
			return
		}
		if res, ok := n.(*plan.NamedResult); ok {
			out = append(out, res.Name)
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(n)
	return out
}

// stepIO abstracts one step's reads, writes and drops for the
// live-range analysis, derived from the step registry (stepinfo.go):
// result-store reads, writes and frees map one-to-one onto the
// analysis' reads, writes and drops. DeltaIn# is written and dropped
// by the delta step itself within one Run, so it arrives pre-managed
// and never grows a cross-step live range. Unknown step kinds
// contribute no IO — the registry fails closed and the verifier's
// unknown-step diagnostic names them.
func stepIO(s Step, loops *loopSlots) dataflow.StepIO {
	io := dataflow.StepIO{LoopBodyStart: -1}
	info, ok := infoFor(s, loops)
	if !ok {
		return io
	}
	io.Reads = info.Effects.Reads
	io.Writes = info.Effects.Writes
	io.Drops = info.Effects.Frees
	io.LoopBodyStart = info.LoopBodyStart
	return io
}

// insertTruncations runs the live-range analysis over the finished step
// list and inserts a TruncateStep right after each result's last
// possible read, so Common#k blocks, delta tables and earlier CTE
// results do not sit at full size once their loop is done. Results some
// step already drops (rename sources, the merge path's working table)
// manage their own lifetime and are skipped; so is anything the final
// query reads. An insertion can never land strictly inside a loop body:
// a read at any body step extends the result's last use to the loop
// jump itself, so the insertion point is at earliest one past the jump.
func (r *rewriter) insertTruncations() {
	steps := r.prog.Steps
	ios := make([]dataflow.StepIO, len(steps))
	display := map[string]string{}
	loops := newLoopSlots()
	for i, s := range steps {
		ios[i] = stepIO(s, loops)
		for _, w := range ios[i].Writes {
			display[strings.ToLower(w)] = w
		}
	}
	last := dataflow.LastUses(ios, planResultNames(r.prog.Final))

	managed := map[string]bool{}
	for _, io := range ios {
		for _, d := range io.Drops {
			managed[strings.ToLower(d)] = true
		}
	}

	type insertion struct {
		pos  int
		name string // lowercased
	}
	var ins []insertion
	for name, at := range last {
		if at == dataflow.FreedAtEnd || managed[name] {
			continue
		}
		ins = append(ins, insertion{pos: at + 1, name: name})
	}
	if len(ins) == 0 {
		return
	}
	sort.Slice(ins, func(i, j int) bool {
		if ins[i].pos != ins[j].pos {
			return ins[i].pos < ins[j].pos
		}
		return ins[i].name < ins[j].name
	})

	freedAt := map[string]int{} // 1-based new step numbering
	out := make([]Step, 0, len(steps)+len(ins))
	k := 0
	for i := 0; i <= len(steps); i++ {
		for k < len(ins) && ins[k].pos == i {
			out = append(out, &TruncateStep{Name: display[ins[k].name]})
			freedAt[ins[k].name] = len(out)
			k++
		}
		if i < len(steps) {
			out = append(out, steps[i])
		}
	}
	// Remap loop jump targets past the insertions.
	shift := func(old int) int {
		n := 0
		for _, x := range ins {
			if x.pos <= old {
				n++
			}
		}
		return old + n
	}
	for _, s := range out {
		if l, ok := s.(*LoopStep); ok {
			l.BodyStart = shift(l.BodyStart)
		}
	}
	r.prog.Steps = out

	// Fold the freed-at step into the EXPLAIN record.
	noted := map[string]bool{}
	for i := range r.prog.Dataflow {
		key := strings.ToLower(r.prog.Dataflow[i].Result)
		noted[key] = true
		r.prog.Dataflow[i].FreedAfter = freedAt[key]
	}
	for _, x := range ins {
		if !noted[x.name] {
			r.noteDataflow(display[x.name], nil, nil)
			r.prog.Dataflow[len(r.prog.Dataflow)-1].FreedAfter = freedAt[x.name]
		}
	}
}
