// Package core implements DBSpinner's contribution: the functional
// rewrite that expands iterative CTEs (WITH ITERATIVE ... ITERATE ...
// UNTIL) into a flat step program of ordinary SQL operators plus the
// two new executor operators, rename and loop (paper §IV and §VI), and
// the optimizer extensions — common-result materialization and
// restricted predicate push down (paper §V).
package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"dbspinner/internal/ast"
	"dbspinner/internal/converge"
	"dbspinner/internal/effects"
	"dbspinner/internal/exec"
	"dbspinner/internal/faultinject"
	"dbspinner/internal/mpp"
	"dbspinner/internal/plan"
	"dbspinner/internal/sqltypes"
	"dbspinner/internal/storage"
)

// Options toggle the optimizations so benchmarks can compare against
// the non-optimized baselines described in §VII.
type Options struct {
	// UseRename enables the rename operator for full-update queries
	// (§VII-B). When false, the engine copies the working table back
	// into the main table and runs a changed-row identification pass,
	// the baseline of Figure 8.
	UseRename bool
	// CommonResults materializes iteration-invariant join subtrees
	// before the loop (§V-A, Figure 9).
	CommonResults bool
	// PushDownPredicates pushes safe Qf predicates into the
	// non-iterative part (§V-B, Figure 10).
	PushDownPredicates bool
	// DeltaIteration evaluates Ri's scan of the iterative reference
	// against the rows changed by the previous merge (plus the keys
	// they can reach through the base-table equijoins) instead of the
	// full CTE — REX-style semi-naive evaluation on top of the merge
	// path's identification pass. Applied only when the AST analysis
	// proves it safe; otherwise the full plan runs and results are
	// identical either way. Off by default.
	DeltaIteration bool
	// ColumnPruning enables the column-level dataflow optimizations
	// (internal/dataflow): projection pruning — intermediate results
	// materialize only the columns the loop body, termination
	// condition, key identification, delta frontier or final query can
	// observe — and liveness-driven truncation, which inserts truncate
	// steps at each result's last use so Common#k blocks and delta
	// tables do not sit at full size after their loop exits. Pruning is
	// automatically withheld where it could be observed (UNTIL DELTA
	// and UNTIL n UPDATES compare whole rows), so results are identical
	// either way.
	ColumnPruning bool
	// MaxIterations is the safety cap installed on loops whose
	// termination the converge analysis cannot prove (Unknown
	// verdicts): the loop fails with ErrIterationCapExceeded instead of
	// spinning forever. Zero (or negative) means DefaultMaxIterations;
	// the guard itself cannot be disabled, only sized. Provably
	// terminating or converging loops never carry the guard. The same
	// value caps recursive CTEs (ExecuteRecursive).
	MaxIterations int64
	// Parts is the partition count for materialized intermediate
	// results.
	Parts int
	// Parallel executes materialize steps and the final query on the
	// shared-nothing MPP machine (one fragment per partition) instead
	// of the single-threaded volcano executor.
	Parallel bool
	// ParallelSteps bounds the worker pool of the dependency-DAG step
	// scheduler: within each straight-line region between loop-control
	// steps, steps whose statically derived effect sets are disjoint
	// (Bernstein's conditions, internal/effects) run concurrently, up
	// to this many at once. 0 or 1 keeps the sequential pc-loop. The
	// scheduler only runs a schedule the verifier has re-derived and
	// accepted, and composes with Parallel's per-step partition
	// parallelism (each scheduled step gets its own MPP machine).
	ParallelSteps int
	// Trace records a per-iteration runtime trace (wall clock, rows,
	// delta-frontier size) plus per-step timings into Stats.Trace. Off
	// by default: the untraced path allocates nothing and never reads
	// the clock.
	Trace bool
	// QueryTimeout, when > 0, bounds the wall clock of one program
	// execution: the run fails with ErrQueryTimeout once it expires. A
	// deadline already present on the caller's context takes
	// precedence.
	QueryTimeout time.Duration
	// Verify runs the structural program verifier (internal/verify)
	// over the rewritten step program before it is returned. The
	// verifier re-checks the Table I invariants — jump targets,
	// materialization order, rename schema equality, termination
	// liveness, intermediate-result leaks and push-down safety —
	// independently of the rewrite that produced them.
	Verify bool
	// ShuffleElision lets the MPP machine skip join/aggregate/distinct
	// exchanges whose input the static partition-property analysis
	// (internal/distprop) proved already co-partitioned on the
	// exchange keys. Results are byte-identical either way; only
	// Stats.RowsShuffled changes. The properties themselves are always
	// derived (EXPLAIN prints them); this option only controls whether
	// the machine acts on them. Effective only with Parallel and
	// Parts > 1.
	ShuffleElision bool
	// CheckShuffleElision arms the dynamic cross-check on every elided
	// exchange: rows are re-hashed at consumption and the run fails if
	// any sits outside its claimed partition (the storage.Guard
	// analogue for distribution claims).
	CheckShuffleElision bool
	// IncrementalAgg lets the rewrite maintain per-group aggregate
	// results across iterations instead of re-running the full Ri
	// aggregation, when the aggprop analysis (internal/aggprop) proves
	// every aggregate call decomposable and the group-key-stability
	// and retraction-visibility side conditions hold. Affected groups
	// are re-folded from their full input; unaffected groups reuse the
	// cached output row verbatim, so results are byte-identical either
	// way — row order and float accumulation order included. Licensed
	// on the volcano executor only (MPP runs keep the full plan) and
	// superseded by DeltaIteration when both would apply. On by
	// default.
	IncrementalAgg bool
	// CheckIncrementalAgg arms the dynamic cross-check on aggregate
	// maintenance: each iteration, a deterministic sample of the
	// groups served from the cache is recomputed from scratch and any
	// divergence fails the query.
	CheckIncrementalAgg bool
	// Retry bounds the in-process retry of failed loop iterations from
	// their back-edge checkpoints (retry.go). The zero value disables
	// checkpointing entirely: no state is captured and a failure aborts
	// the query, exactly as before the fault-tolerance layer existed.
	Retry RetryPolicy
	// FaultSchedule arms deterministic fault injection
	// (internal/faultinject) for this execution: each entry fires once,
	// at the named point's scheduled hit count. Empty means disarmed —
	// the injection hooks cost one nil check each.
	FaultSchedule []faultinject.Fault
}

// RetryPolicy bounds the iteration-granular retry of a failed step
// program (Options.Retry, Config.RetryPolicy).
type RetryPolicy struct {
	// MaxAttempts is the number of retries allowed per checkpoint
	// before the degradation ladder advances (or, with NoDegrade, the
	// query fails). 0 disables checkpointing and retry.
	MaxAttempts int
	// Backoff is the wait before the first retry of a checkpoint; it
	// doubles on each subsequent attempt. The wait is context-aware: a
	// cancellation or deadline firing during backoff fails the query
	// with the original error. Zero means retry immediately.
	Backoff time.Duration
	// NoDegrade pins the plan: when the attempts for a checkpoint are
	// exhausted the query fails instead of descending the
	// graceful-degradation ladder (parallel → serial steps → volcano).
	NoDegrade bool
}

// DefaultOptions enables every optimization and the program verifier.
func DefaultOptions() Options {
	return Options{UseRename: true, CommonResults: true, PushDownPredicates: true, ColumnPruning: true, Parts: 1, Verify: true, ShuffleElision: true, IncrementalAgg: true}
}

// Stats reports what the step program did, feeding the experiments.
type Stats struct {
	Iterations   int   // loop iterations executed
	UpdatedRows  int64 // cumulative rows written to working tables
	MovedRows    int64 // rows physically copied back (baseline path)
	Renames      int   // rename operator executions
	CommonBlocks int   // common results materialized before the loop
	RowsShuffled int64 // rows moved by MPP exchanges (parallel mode)
	// Shuffle-elision accounting (Options.ShuffleElision):
	// ShufflesElided counts exchange operators skipped because the
	// partition-property analysis proved them redundant, RowsElided
	// their input rows (rows that were not rehashed and routed).
	ShufflesElided int64
	RowsElided     int64
	// Delta-iteration accounting: per iteration, RiFullRows counts the
	// CTE rows a full evaluation of Ri would read from the iterative
	// reference and RiInputRows the rows actually fed to it (equal
	// unless a DeltaMaterializeStep restricted the scan).
	RiFullRows  int64
	RiInputRows int64
	// Incremental-aggregate accounting (Options.IncrementalAgg): per
	// iteration, AggFullRows counts the CTE rows a full re-aggregation
	// of Ri would read and AggInputRows the rows actually re-folded
	// (equal unless a MaintainAggStep served unaffected groups from
	// its cache).
	AggFullRows  int64
	AggInputRows int64
	// MaterializedCells counts cells (rows × columns) written into
	// intermediate results by materialize, delta-materialize, merge and
	// copy-back steps — the data-movement currency the column-pruning
	// experiment reports.
	MaterializedCells int64
	// Fault-tolerance accounting (Options.Retry): Retries counts the
	// iteration re-attempts taken from back-edge checkpoints,
	// Degradations the rungs descended on the graceful-degradation
	// ladder (parallel → serial steps → volcano).
	Retries      int
	Degradations int
	Exec         exec.Stats
	// Trace is the per-iteration runtime trace, populated only when
	// Options.Trace was set for the run.
	Trace *IterationTrace
}

// Step is one instruction of the rewritten plan. Steps execute
// sequentially except for Loop, which may jump backwards.
type Step interface {
	// Run executes the step. It returns the index of the next step to
	// execute, allowing Loop to jump.
	Run(ctx *Context, self int) (int, error)
	// Explain renders the step like Table I of the paper.
	Explain() string
}

// Context carries the runtime state of a program execution.
type Context struct {
	RT    *exec.StoreRuntime
	Stats *Stats
	// MPP, when set, executes materialize steps on the shared-nothing
	// machine.
	MPP *mpp.Machine
	// Ctx is the caller's cancellation context; every step polls it
	// through Checkpoint before running. Nil keeps the zero-cost
	// uncancellable path.
	Ctx context.Context
	// Trace, when set, collects the per-iteration runtime trace.
	Trace *IterationTrace
	// Faults is the armed fault-injection registry (Options.
	// FaultSchedule); nil keeps every injection hook a single nil
	// check.
	Faults *faultinject.Registry
	// created tracks intermediate results to drop when the query ends.
	created map[string]bool
	// degrade is the graceful-degradation rung the retry driver has
	// descended to; retries and degradations count what the run cost
	// (folded into Stats when RunContext returns, so checkpoint
	// restores cannot roll them back).
	degrade      int
	retries      int
	degradations int
}

// Graceful-degradation ladder rungs: each retry exhaustion descends
// one rung, trading optimization for isolation, and never climbs back.
const (
	// rungNone runs the plan as configured.
	rungNone = iota
	// rungSerial disables the parallel step scheduler, shuffle elision
	// and incremental aggregate maintenance — the subsystems with
	// cross-step or cross-iteration state — but keeps MPP partition
	// parallelism.
	rungSerial
	// rungVolcano additionally drops the MPP machine: every step and
	// the final query run on the single-threaded volcano executor.
	rungVolcano
)

// rungName renders the current ladder position for traces.
func (c *Context) rungName() string {
	switch c.degrade {
	case rungSerial:
		return "serial"
	case rungVolcano:
		return "volcano"
	}
	return "same-plan"
}

// degradeOnce descends one ladder rung, applying its plan changes to
// the context. It reports false when the ladder is exhausted (already
// at the bottom rung).
func (c *Context) degradeOnce() bool {
	switch c.degrade {
	case rungNone:
		c.degrade = rungSerial
		c.degradations++
		if c.MPP != nil {
			c.MPP.Elide = nil // no elided exchanges on the degraded path
		}
		return true
	case rungSerial:
		c.degrade = rungVolcano
		c.degradations++
		c.MPP = nil // single-threaded volcano from here on
		return true
	}
	return false
}

// degraded reports whether the context has left the configured plan
// (any rung below the top); MaintainAggStep consults it to force the
// full aggregation path once the ladder has been descended.
func (c *Context) degraded() bool { return c.degrade != rungNone }

// Checkpoint is the cooperative cancellation point every step consults
// on entry: it reports a QueryLifecycleError naming the iteration and
// step reached when the query's context has fired, nil otherwise. self
// is the step's 0-based index.
func (c *Context) Checkpoint(self int) error {
	if c.Ctx == nil {
		return nil
	}
	if err := c.Ctx.Err(); err != nil {
		return WrapCancel(err, c.Stats.Iterations, self+1, "")
	}
	return nil
}

func (c *Context) track(name string) {
	if c.created == nil {
		c.created = make(map[string]bool)
	}
	c.created[strings.ToLower(name)] = true
}

// Program is the rewritten form of a query with iterative CTEs: the
// step list followed by the final query Qf.
type Program struct {
	Steps []Step
	// Final is the plan of Qf, executed after the steps complete.
	Final plan.Node
	// FinalColumns are Qf's output columns.
	FinalColumns []plan.ColInfo
	// Parallel and Parts configure MPP execution of the program.
	Parallel bool
	Parts    int
	// Trace enables the per-iteration runtime trace (Options.Trace);
	// QueryTimeout bounds the execution wall clock (Options.
	// QueryTimeout) unless the caller's context already has a deadline.
	Trace        bool
	QueryTimeout time.Duration
	// Retry bounds the iteration-granular retry of failed iterations
	// from their back-edge checkpoints (Options.Retry); the zero value
	// disables checkpointing. FaultSchedule arms deterministic fault
	// injection for the execution (Options.FaultSchedule).
	Retry         RetryPolicy
	FaultSchedule []faultinject.Fault
	// Checkpoints records the static checkpoint specification of each
	// loop back-edge: which result-store slots and loop operators the
	// loop body can touch, hence what a back-edge checkpoint must cover
	// for a retry to be sound. Derived through the step registry
	// (stepinfo.go) alongside Effects; EXPLAIN prints it and the
	// verifier re-derives it independently (unsafe-retry,
	// stale-checkpoint) rather than trusting the record. Nil for
	// hand-built programs, whose runtime checkpoints still capture
	// every tracked slot (the dynamic superset).
	Checkpoints []CheckpointSpec
	// Pushed records the Qf conjuncts the optimizer moved into the
	// non-iterative part of each iterative CTE (§V-B), in their
	// original qualified form, so the verifier can re-derive the
	// safety conditions from the AST and reject an unsafe push
	// independently of the optimizer's own check.
	Pushed []PushedPredicate
	// Dataflow is the column-level dataflow analysis result
	// (Options.ColumnPruning): per intermediate result, the live
	// columns it materializes, the declared columns pruned away, and
	// the step that frees it. EXPLAIN prints it; the verifier
	// re-derives the underlying safety independently rather than
	// trusting this record.
	Dataflow []DataflowEntry
	// Verdicts records the termination/convergence verdict the rewrite
	// derived for each iterative CTE (internal/converge), in CTE
	// order. EXPLAIN prints verdict, bound and evidence chain; the
	// verifier re-runs the analysis on the same inputs and fail-closes
	// when a recorded claim is stronger than it can reprove or an
	// Unknown loop lacks its iteration-cap guard.
	Verdicts []converge.Verdict
	// Lookup is the base-table lookup the program was planned against.
	// The verifier's termination re-derivation consumes it so both
	// analysis passes see identical schemas and cardinalities; it is
	// nil for hand-built programs, which makes the re-derivation
	// conservative.
	Lookup plan.TableLookup
	// ParallelSteps is the scheduler's worker bound (Options.
	// ParallelSteps); the schedule is executed only when it is > 1.
	ParallelSteps int
	// Effects records the statically derived effect set of each step
	// (one entry per step, in step order), and Schedule the region
	// decomposition with the happens-before DAG of each straight-line
	// region. Both are derived through the step registry (stepinfo.go)
	// after the step list is final; EXPLAIN prints them and the
	// verifier re-derives both independently (effect-violation,
	// unsound-schedule) rather than trusting these records. Nil for
	// hand-built programs.
	Effects  []effects.Set
	Schedule *effects.Schedule
	// DistProps records the distribution property the static
	// partition-property analysis (internal/distprop) claims for each
	// step, in step order, plus one final entry for Qf. EXPLAIN prints
	// them; the verifier re-derives every claim independently
	// (unsound-partition-claim) rather than trusting the record.
	DistProps []DistClaim
	// AggClaims records the aggregate decomposability verdict the
	// aggprop analysis derived for each iterative CTE whose plan
	// aggregates (internal/aggprop), with the step of the
	// MaintainAggStep a licensed verdict installed (0 when the full
	// plan runs). EXPLAIN prints verdict, lattice classes and evidence
	// chain; the verifier re-derives every licensed claim
	// independently (unsound-agg-claim) and re-checks the accumulator
	// wiring (stale-accumulator) rather than trusting the record.
	AggClaims []AggClaim
	// Elisions records the exchanges the analysis licensed the MPP
	// machine to skip (Options.ShuffleElision). The verifier must be
	// able to re-license each one from its own derivation
	// (missing-exchange), and CheckElide arms the row-level runtime
	// cross-check.
	Elisions   []ElisionRecord
	CheckElide bool
	// elide is the node-keyed elision map handed to every MPP machine
	// the program creates (built from Elisions by deriveDistProps).
	elide map[plan.Node]mpp.Elide
}

// DataflowEntry is the analysis record for one intermediate result.
type DataflowEntry struct {
	// Result is the intermediate result name (CTE table, Common#k,
	// Delta#cte, ...).
	Result string
	// Live are the materialized column names, nil when the entry only
	// records a live range.
	Live []string
	// Pruned are the declared columns the analysis proved dead.
	Pruned []string
	// FreedAfter is the 1-based index of the truncate step that frees
	// the result; 0 means it is held until the program ends.
	FreedAfter int
}

// PushedPredicate is one predicate the optimizer pushed below the loop.
type PushedPredicate struct {
	// CTE is the iterative CTE whose non-iterative part received the
	// predicate.
	CTE string
	// Conj is the pushed conjunct as it appeared in Qf's WHERE clause
	// (table qualifiers intact).
	Conj ast.Expr
}

// verifier is the registered post-rewrite program checker. It lives
// behind a registration hook because internal/verify imports this
// package for the step types; the hook breaks the cycle while keeping
// verification inside Rewrite. Importing internal/verify (the engine
// does) arms it.
var verifier func(*Program, *ast.SelectStmt) error

// RegisterVerifier installs the program verifier invoked by Rewrite
// when Options.Verify is set. It is called from internal/verify's
// init; later registrations replace earlier ones.
func RegisterVerifier(fn func(*Program, *ast.SelectStmt) error) { verifier = fn }

// Run executes the step program and then Qf, returning its rows. All
// intermediate results created by the program are dropped afterwards,
// mirroring the single-plan execution the paper advocates (no DDL
// residue).
func (p *Program) Run(rt *exec.StoreRuntime, stats *Stats) ([]sqltypes.Row, error) {
	return p.RunContext(context.Background(), rt, stats)
}

// RunContext executes the program under goctx: every step boundary,
// scheduler region, MPP partition batch and executor inner loop polls
// the context, and a fired cancellation or deadline surfaces as a
// QueryLifecycleError wrapping ErrQueryCanceled or ErrQueryTimeout.
// When p.QueryTimeout is set and goctx carries no deadline of its own,
// the program arms its own deadline.
func (p *Program) RunContext(goctx context.Context, rt *exec.StoreRuntime, stats *Stats) (rows []sqltypes.Row, err error) {
	if stats == nil {
		stats = &Stats{}
	}
	if goctx == nil {
		goctx = context.Background()
	}
	// Last-resort panic containment. Installed before the cleanup
	// defers below so that, during a panic unwind, the created-slot
	// drop and stats merges have already run by the time the recover
	// here converts the panic into a structured error.
	defer func() {
		if v := recover(); v != nil {
			rows, err = nil, containPanic(v, stats.Iterations, 0)
		}
	}()
	if p.QueryTimeout > 0 {
		if _, has := goctx.Deadline(); !has {
			var cancel context.CancelFunc
			goctx, cancel = context.WithTimeout(goctx, p.QueryTimeout)
			defer cancel()
		}
	}
	ctx := &Context{RT: rt, Stats: stats, Ctx: goctx, Faults: faultinject.NewRegistry(p.FaultSchedule)}
	defer func() {
		stats.Retries = ctx.retries
		stats.Degradations = ctx.degradations
	}()
	if p.Trace {
		ctx.Trace = newIterationTrace(len(p.Steps))
		stats.Trace = ctx.Trace
	}
	var mppStats mpp.Stats
	if p.Parallel && p.Parts > 1 {
		ctx.MPP = mpp.New(rt, p.Parts, &mppStats, &stats.Exec)
		ctx.MPP.Ctx = goctx
		ctx.MPP.Elide = p.elide
		ctx.MPP.CheckElide = p.CheckElide
		// The top-level machine is the only one that takes partition
		// faults: scheduled steps run on private machines whose counter
		// interleaving would not be deterministic.
		ctx.MPP.Faults = ctx.Faults
		defer func() {
			stats.RowsShuffled += mppStats.RowsShuffled
			stats.ShufflesElided += mppStats.ShufflesElided
			stats.RowsElided += mppStats.RowsElided
		}()
	}
	defer func() {
		// Leak-freedom on every exit path: each drop runs contained, so
		// a storage fault firing during cleanup cannot unwind past the
		// remaining slots. A fault here is discarded — the query's
		// outcome is already decided.
		for name := range ctx.created {
			name := name
			_ = faultinject.Contain(-1, func() error {
				rt.Results.Drop(name)
				return nil
			})
		}
	}()
	if err := p.runSteps(ctx); err != nil {
		return nil, err
	}
	rows, err = p.runFinal(ctx, goctx, rt, stats)
	if err != nil {
		return nil, WrapCancel(err, stats.Iterations, 0, "final query")
	}
	if ctx.Trace != nil {
		ctx.Trace.finish(len(rows))
	}
	return rows, nil
}

// runFinal executes Qf under panic containment, retrying under the
// same policy as the step program: Qf is read-only over the finished
// loop state, so a failed attempt needs no restore — re-run, and on
// exhausted attempts descend the degradation ladder (the volcano rung
// re-runs it single-threaded).
func (p *Program) runFinal(ctx *Context, goctx context.Context, rt *exec.StoreRuntime, stats *Stats) ([]sqltypes.Row, error) {
	attempt := func() (rs []sqltypes.Row, ferr error) {
		ferr = faultinject.Contain(-1, func() error {
			var e error
			if ctx.MPP != nil {
				rs, e = ctx.MPP.Run(p.Final)
			} else {
				rs, e = exec.RunContext(goctx, p.Final, rt, &stats.Exec)
			}
			return e
		})
		return rs, promotePanic(ferr, stats.Iterations, 0)
	}
	rows, err := attempt()
	attempts := 0
	backoff := p.Retry.Backoff
	for err != nil && p.Retry.MaxAttempts > 0 && retryable(err) {
		if attempts >= p.Retry.MaxAttempts {
			if p.Retry.NoDegrade || !ctx.degradeOnce() {
				break
			}
			attempts = 0
			backoff = p.Retry.Backoff
		}
		attempts++
		ctx.retries++
		if ctx.Trace != nil {
			ctx.Trace.noteRetry(stats.Iterations, 0, ctx.rungName(), err)
		}
		if werr := waitBackoff(ctx.Ctx, backoff); werr != nil {
			return nil, err // context fired during backoff: report the original failure
		}
		backoff *= 2
		rows, err = attempt()
	}
	return rows, err
}

// Explain renders the whole program in the style of Table I.
func (p *Program) Explain() string {
	var b strings.Builder
	for i, s := range p.Steps {
		fmt.Fprintf(&b, "Step %d: %s\n", i+1, s.Explain())
	}
	b.WriteString("Final: ")
	b.WriteString(strings.TrimRight(strings.ReplaceAll(plan.ExplainTree(p.Final), "\n", "\n       "), " \n"))
	b.WriteByte('\n')
	// Column-level dataflow analysis (Options.ColumnPruning).
	for _, e := range p.Dataflow {
		fmt.Fprintf(&b, "Dataflow %s:", e.Result)
		if e.Live != nil {
			fmt.Fprintf(&b, " live columns (%s)", strings.Join(e.Live, ", "))
			if len(e.Pruned) > 0 {
				fmt.Fprintf(&b, ", pruned (%s)", strings.Join(e.Pruned, ", "))
			}
			b.WriteByte(';')
		}
		if e.FreedAfter > 0 {
			fmt.Fprintf(&b, " freed at step %d.\n", e.FreedAfter)
		} else {
			b.WriteString(" held to end of program.\n")
		}
	}
	// Termination/convergence verdicts (internal/converge): what the
	// static analysis proved about each loop, with its evidence chain.
	for _, v := range p.Verdicts {
		fmt.Fprintf(&b, "Termination %s: %s", v.CTE, v.Kind)
		if bs := v.BoundString(); bs != "" {
			fmt.Fprintf(&b, ", %s", bs)
		}
		if v.Kind == converge.Unknown {
			if cap := p.loopCap(v.CTE); cap > 0 {
				fmt.Fprintf(&b, "; guard: fail after %d iterations with ErrIterationCapExceeded", cap)
			}
		}
		b.WriteString(".\n")
		for _, ev := range v.Evidence {
			fmt.Fprintf(&b, "  evidence [%s]: %s\n", ev.Rule, ev.Detail)
		}
		for _, d := range v.Diags {
			fmt.Fprintf(&b, "  unproved: %s\n", d)
		}
	}
	// Aggregate decomposability verdicts (internal/aggprop): the
	// lattice class of every aggregate call, the side-condition
	// evidence, and whether maintenance was licensed.
	for _, c := range p.AggClaims {
		if c.Step > 0 {
			fmt.Fprintf(&b, "AggMaintenance %s: licensed, maintained at step %d", c.CTE, c.Step)
		} else if c.Verdict.Licensed {
			fmt.Fprintf(&b, "AggMaintenance %s: licensed, not installed (full plan runs)", c.CTE)
		} else {
			fmt.Fprintf(&b, "AggMaintenance %s: not licensed (full plan runs)", c.CTE)
		}
		if len(c.Verdict.Calls) > 0 {
			calls := make([]string, len(c.Verdict.Calls))
			for i, call := range c.Verdict.Calls {
				calls[i] = call.String()
			}
			fmt.Fprintf(&b, "; aggregates %s", strings.Join(calls, ", "))
		}
		b.WriteString(".\n")
		for _, ev := range c.Verdict.Evidence {
			fmt.Fprintf(&b, "  evidence [%s]: %s\n", ev.Rule, ev.Detail)
		}
		for _, d := range c.Verdict.Diags {
			fmt.Fprintf(&b, "  unproved: %s\n", d)
		}
	}
	// Static effect sets and the region schedule they license
	// (internal/effects): what each step reads, writes and frees, and
	// how wide the dependency DAG of each straight-line region is.
	if len(p.Effects) == len(p.Steps) {
		for i, e := range p.Effects {
			fmt.Fprintf(&b, "Effects step %d: %s.\n", i+1, e)
		}
	}
	// Checkpoint specifications (retry.go): what each loop back-edge
	// checkpoint must cover for an iteration retry to be sound.
	for _, cp := range p.Checkpoints {
		fmt.Fprintf(&b, "Checkpoint loop step %d: body from step %d; covers slots (%s)",
			cp.Loop, cp.Body, strings.Join(cp.Slots, ", "))
		if len(cp.LoopSlots) > 0 {
			fmt.Fprintf(&b, "; loop state (%s)", strings.Join(cp.LoopSlots, ", "))
		}
		b.WriteString(".\n")
	}
	// Partition-property analysis (internal/distprop): the distribution
	// property each step's result provably satisfies, and the shuffle
	// exchanges that property licensed the machine to skip.
	for _, c := range p.DistProps {
		if c.Step == 0 {
			fmt.Fprintf(&b, "Distribution final: %s.\n", c.Desc)
			continue
		}
		if c.Slot == "" {
			fmt.Fprintf(&b, "Distribution step %d: %s.\n", c.Step, c.Desc)
		} else {
			fmt.Fprintf(&b, "Distribution step %d: %s is %s.\n", c.Step, c.Slot, c.Desc)
		}
	}
	for _, el := range p.Elisions {
		if el.Step == 0 {
			fmt.Fprintf(&b, "Elided exchange (final): %s.\n", el.Desc)
		} else {
			fmt.Fprintf(&b, "Elided exchange step %d: %s.\n", el.Step, el.Desc)
		}
	}
	if p.Schedule != nil {
		fmt.Fprintf(&b, "Schedule: %d regions; max width %d; critical path %d of %d steps.\n",
			len(p.Schedule.Regions), p.Schedule.MaxWidth(), p.Schedule.CritPathSteps(), len(p.Steps))
		for i := range p.Schedule.Regions {
			r := &p.Schedule.Regions[i]
			if r.Barrier {
				fmt.Fprintf(&b, "Schedule region %d: barrier step %d (%s).\n", i+1, r.Start+1, r.BarrierReason)
			} else {
				fmt.Fprintf(&b, "Schedule region %d: steps %d-%d; width %d; critical path %d.\n",
					i+1, r.Start+1, r.End(), r.Width, r.CritPath)
			}
		}
	}
	// Iteration estimation (paper §IX future work) feeds costing.
	for _, s := range p.Steps {
		if init, ok := s.(*InitLoopStep); ok {
			fmt.Fprintf(&b, "Estimated iterations: %s; estimated cost: %g materialized steps",
				estimateLoop(init.Loop), p.CostEstimate())
			if p.hasDeltaStep() {
				fmt.Fprintf(&b, " (delta frontier charged at %g%% of a full Ri scan after the first iteration)",
					deltaInputFraction*100)
			}
			if p.hasMaintainStep() {
				fmt.Fprintf(&b, " (maintained aggregation charged at %g%% of a full re-fold after the first iteration)",
					aggMaintFraction*100)
			}
			b.WriteString(".\n")
			break
		}
	}
	return b.String()
}

// loopCap returns the iteration cap installed on the named CTE's loop
// step, 0 when none.
func (p *Program) loopCap(cte string) int64 {
	for _, s := range p.Steps {
		if l, ok := s.(*LoopStep); ok && l.Loop != nil && strings.EqualFold(l.Loop.CTEName, cte) {
			return l.Loop.Cap
		}
	}
	return 0
}

// hasDeltaStep reports whether any step evaluates Ri against the
// changed-row frontier instead of the full CTE.
func (p *Program) hasDeltaStep() bool {
	for _, s := range p.Steps {
		if _, ok := s.(*DeltaMaterializeStep); ok {
			return true
		}
	}
	return false
}

// hasMaintainStep reports whether any step maintains aggregate
// results across iterations instead of re-folding the full CTE.
func (p *Program) hasMaintainStep() bool {
	for _, s := range p.Steps {
		if _, ok := s.(*MaintainAggStep); ok {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Steps
// ---------------------------------------------------------------------

// MaterializeStep executes a plan and stores the rows under a result
// name (the insert logic of §III implemented as materialization).
type MaterializeStep struct {
	Into  string
	Plan  plan.Node
	Parts int
	// CheckKey, when >= 0, verifies the materialized rows have unique
	// values in that column; the merge path requires a unique row
	// identifier and duplicates are a run-time error (§II).
	CheckKey int
	// CountsAsUpdate marks working-table materializations whose row
	// count feeds the UpdatedRows statistic. The UNTIL n UPDATES
	// termination counter is NOT fed here: materialized row counts
	// overcount (a full-update Ri rewrites every row even when nothing
	// changed), so the loop counter is fed by the identification pass
	// of CopyBackStep/MergeStep instead.
	CountsAsUpdate bool
	// IsCommon marks common-result materializations (Figure 5), for
	// stats.
	IsCommon bool
}

// Run implements Step.
func (m *MaterializeStep) Run(ctx *Context, self int) (int, error) {
	if err := ctx.Checkpoint(self); err != nil {
		return 0, err
	}
	var t *storage.Table
	var err error
	if ctx.MPP != nil {
		t, err = ctx.MPP.Materialize(m.Plan, m.Into)
	} else {
		t, err = exec.MaterializeContext(ctx.Ctx, m.Plan, ctx.RT, &ctx.Stats.Exec, m.Into, m.Parts)
	}
	if err != nil {
		return 0, err
	}
	if m.CheckKey >= 0 {
		if err := checkUniqueKey(t, m.CheckKey); err != nil {
			return 0, err
		}
		t.PK = m.CheckKey
	}
	ctx.RT.Results.Put(m.Into, t)
	ctx.track(m.Into)
	ctx.Stats.MaterializedCells += int64(t.Len()) * int64(len(t.Schema))
	if m.IsCommon {
		ctx.Stats.CommonBlocks++
	}
	if m.CountsAsUpdate {
		ctx.Stats.UpdatedRows += int64(t.Len())
	}
	return self + 1, nil
}

// Explain implements Step.
func (m *MaterializeStep) Explain() string {
	return fmt.Sprintf("Materialize %s with:\n%s", m.Into,
		strings.TrimRight(indent(plan.ExplainTree(m.Plan), "  "), "\n"))
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pad + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

func checkUniqueKey(t *storage.Table, key int) error {
	seen := make(map[sqltypes.Key]bool, t.Len())
	for _, part := range t.Parts {
		for _, r := range part {
			if key >= len(r) {
				return fmt.Errorf("key column %d out of range", key)
			}
			k := r[key].Key()
			if seen[k] {
				return fmt.Errorf("iterative part produced duplicate rows for key %s; add an aggregation or GROUP BY to resolve duplicates", r[key])
			}
			seen[k] = true
		}
	}
	return nil
}

// RenameStep is the new rename operator (§VI-A): re-point the working
// result name at the main CTE name, releasing the displaced result.
type RenameStep struct {
	From, To string
}

// Run implements Step.
func (r *RenameStep) Run(ctx *Context, self int) (int, error) {
	if err := ctx.Checkpoint(self); err != nil {
		return 0, err
	}
	if err := ctx.RT.Results.Rename(r.From, r.To); err != nil {
		return 0, err
	}
	ctx.track(r.To)
	ctx.Stats.Renames++
	return self + 1, nil
}

// Explain implements Step.
func (r *RenameStep) Explain() string {
	return fmt.Sprintf("Rename %s to %s.", r.From, r.To)
}

// CopyBackStep is the Figure 8 baseline: physically move the working
// table's rows back into the main table and identify which rows
// changed, even though a full-update query replaces everything.
type CopyBackStep struct {
	From, To string
	Parts    int
	Key      int // key column used for the changed-row identification
	// Loop, when set, receives the changed-row count of the
	// identification pass, driving UNTIL n UPDATES termination.
	Loop *LoopState
}

// Run implements Step.
func (c *CopyBackStep) Run(ctx *Context, self int) (int, error) {
	if err := ctx.Checkpoint(self); err != nil {
		return 0, err
	}
	src := ctx.RT.Results.Get(c.From)
	if src == nil {
		return 0, fmt.Errorf("copy-back: result %q not found", c.From)
	}
	dst := ctx.RT.Results.Get(c.To)
	if dst == nil {
		return 0, fmt.Errorf("copy-back: result %q not found", c.To)
	}
	// Changed-row identification pass (redundant for full updates, as
	// §VII-B explains — that is the point of the baseline).
	old := make(map[sqltypes.Key]sqltypes.Row, dst.Len())
	for _, part := range dst.Parts {
		for _, r := range part {
			if c.Key < len(r) {
				old[r[c.Key].Key()] = r
			}
		}
	}
	changed := int64(0)
	seen := 0
	fresh := storage.NewTable(c.To, src.Schema.Clone(), c.Parts)
	fresh.PK = src.PK
	fresh.DistCol = 0
	for _, part := range src.Parts {
		for _, r := range part {
			if c.Key >= len(r) {
				return 0, fmt.Errorf("copy-back into %s: key column %d out of range", c.To, c.Key)
			}
			seen++
			if prev, ok := old[r[c.Key].Key()]; !ok || !prev.Equal(r) {
				changed++
			}
			fresh.Insert(r.Clone()) // physical data movement
			ctx.Stats.MovedRows++
		}
	}
	// Net shrinkage counts as changes too (same scheme as the Delta
	// termination's changedRows): without it a shrinking Ri whose
	// surviving rows are identical would read as a fixpoint even
	// though the table changed. Counting disappearances per key
	// instead would double-count a row whose key column itself
	// advanced (one appearance plus one disappearance).
	if len(old) > seen {
		changed += int64(len(old) - seen)
	}
	if c.Loop != nil {
		c.Loop.noteUpdates(changed)
	}
	ctx.Stats.MaterializedCells += int64(fresh.Len()) * int64(len(fresh.Schema))
	ctx.RT.Results.Put(c.To, fresh)
	ctx.track(c.To)
	// The working table is cleared for the next iteration.
	ctx.RT.Results.Drop(c.From)
	return self + 1, nil
}

// Explain implements Step.
func (c *CopyBackStep) Explain() string {
	return fmt.Sprintf("Copy %s back into %s, identifying updated rows.", c.From, c.To)
}

// MergeStep is the fused implementation of Algorithm 1 lines 8-10:
// combine the previous CTE contents with the working table on the key
// column — updated rows take the working table's values, everything
// else keeps the previous iteration's values, and working rows whose
// keys are new are appended (the paper's merge SELECT is cte LEFT JOIN
// working, which alone would silently drop them; a full outer merge
// keeps frontier expansion — SSSP reaching a vertex for the first
// time — visible in the result, see DESIGN.md). It is executed as one
// operator the way MPPDB's code generation would fuse it; it also
// performs the §II duplicate-key check while building the hash table.
type MergeStep struct {
	CTE, Work, Into string
	Key             int
	Parts           int
	// Loop, when set, receives the changed-row count (replaced rows
	// with different values, appended rows, both directions of the
	// identification pass), driving UNTIL n UPDATES termination.
	Loop *LoopState
	// Delta, when non-empty, names the per-iteration delta table the
	// merge materializes alongside the main result: exactly the rows
	// it identified as changed. The loop state records the changed
	// keys for DeltaMaterializeStep (Options.DeltaIteration).
	Delta string
}

// Run implements Step.
func (m *MergeStep) Run(ctx *Context, self int) (int, error) {
	if err := ctx.Checkpoint(self); err != nil {
		return 0, err
	}
	cte := ctx.RT.Results.Get(m.CTE)
	if cte == nil {
		return 0, fmt.Errorf("merge: result %q not found", m.CTE)
	}
	work := ctx.RT.Results.Get(m.Work)
	if work == nil {
		return 0, fmt.Errorf("merge: result %q not found", m.Work)
	}
	updated := make(map[sqltypes.Key]sqltypes.Row, work.Len())
	for _, part := range work.Parts {
		for _, r := range part {
			if m.Key >= len(r) {
				return 0, fmt.Errorf("merge: key column %d out of range", m.Key)
			}
			k := r[m.Key].Key()
			if _, dup := updated[k]; dup {
				return 0, fmt.Errorf("iterative part produced duplicate rows for key %s; add an aggregation or GROUP BY to resolve duplicates", r[m.Key])
			}
			updated[k] = r
		}
	}
	out := storage.NewTable(m.Into, cte.Schema.Clone(), m.Parts)
	out.PK = cte.PK
	out.DistCol = 0
	var changed int64
	changedKeys := make(map[sqltypes.Key]bool)
	seen := make(map[sqltypes.Key]bool, cte.Len())
	var deltaRows []sqltypes.Row
	for _, part := range cte.Parts {
		for _, r := range part {
			if m.Key >= len(r) {
				return 0, fmt.Errorf("merge over %s: key column %d out of range", m.CTE, m.Key)
			}
			k := r[m.Key].Key()
			seen[k] = true
			nr, ok := updated[k]
			if !ok {
				out.Insert(r)
				continue
			}
			out.Insert(nr)
			if !r.Equal(nr) {
				changed++
				changedKeys[k] = true
				deltaRows = append(deltaRows, nr)
			}
		}
	}
	// Working rows with keys the CTE has never produced: appended, and
	// by definition changed.
	for _, part := range work.Parts {
		for _, r := range part {
			k := r[m.Key].Key()
			if seen[k] {
				continue
			}
			out.Insert(r)
			changed++
			changedKeys[k] = true
			deltaRows = append(deltaRows, r)
		}
	}
	if m.Loop != nil {
		m.Loop.noteUpdates(changed)
	}
	if m.Delta != "" {
		delta := storage.NewTable(m.Delta, cte.Schema.Clone(), m.Parts)
		delta.PK = cte.PK
		delta.DistCol = 0
		for _, r := range deltaRows {
			delta.Insert(r)
		}
		ctx.RT.Results.Put(m.Delta, delta)
		ctx.track(m.Delta)
		ctx.Stats.MaterializedCells += int64(delta.Len()) * int64(len(delta.Schema))
		if m.Loop != nil {
			m.Loop.noteDelta(changedKeys)
		}
	}
	ctx.RT.Results.Put(m.Into, out)
	ctx.track(m.Into)
	ctx.Stats.MaterializedCells += int64(out.Len()) * int64(len(out.Schema))
	return self + 1, nil
}

// Explain implements Step.
func (m *MergeStep) Explain() string {
	if m.Delta != "" {
		return fmt.Sprintf("Merge %s into %s over %s on the key column (updated rows replace previous values, new keys append); materialize changed rows into %s.",
			m.Work, m.Into, m.CTE, m.Delta)
	}
	return fmt.Sprintf("Merge %s into %s over %s on the key column (updated rows replace previous values, new keys append).",
		m.Work, m.Into, m.CTE)
}

// TruncateStep clears a working result (Algorithm 1 line 10).
type TruncateStep struct {
	Name string
}

// Run implements Step.
func (t *TruncateStep) Run(ctx *Context, self int) (int, error) {
	if err := ctx.Checkpoint(self); err != nil {
		return 0, err
	}
	ctx.RT.Results.Drop(t.Name)
	return self + 1, nil
}

// Explain implements Step.
func (t *TruncateStep) Explain() string {
	return fmt.Sprintf("Delete tuples from %s.", t.Name)
}
