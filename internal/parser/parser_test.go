package parser

import (
	"strings"
	"testing"

	"dbspinner/internal/ast"
	"dbspinner/internal/sqltypes"
)

// The paper's three evaluation queries, used across parser, rewrite and
// engine tests.
const (
	PRQuery = `WITH ITERATIVE PageRank (Node, Rank, Delta)
AS ( SELECT src, 0, 0.15
     FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
 ITERATE
  SELECT PageRank.node,
    PageRank.rank + PageRank.delta,
    0.85 * SUM(IncomingRank.delta * IncomingEdges.Weight)
  FROM PageRank
    LEFT JOIN edges AS IncomingEdges ON PageRank.node = IncomingEdges.dst
    LEFT JOIN PageRank AS IncomingRank ON IncomingRank.node = IncomingEdges.src
  GROUP BY PageRank.node, PageRank.rank + PageRank.delta
 UNTIL 10 ITERATIONS )
SELECT Node, Rank FROM PageRank;`

	SSSPQuery = `WITH ITERATIVE sssp (Node, Distance, Delta)
AS (SELECT src, 9999999, CASE WHEN src = 1 THEN 0 ELSE 9999999 END
 FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
 ITERATE
  SELECT sssp.node,
    LEAST(sssp.distance, sssp.delta),
    COALESCE(MIN(IncomingDistance.delta + IncomingEdges.weight), 9999999)
  FROM sssp
   LEFT JOIN edges AS IncomingEdges ON sssp.node = IncomingEdges.dst
   LEFT JOIN sssp AS IncomingDistance ON IncomingDistance.node = IncomingEdges.src
  WHERE IncomingDistance.Delta != 9999999
  GROUP BY sssp.node, LEAST(sssp.distance, sssp.delta)
 UNTIL 10 ITERATIONS)
SELECT Distance FROM sssp WHERE Node = 10;`

	FFQuery = `WITH ITERATIVE forecast (node, friends, friendsPrev)
AS( SELECT src AS node, count(dst) AS friends,
      ceiling(count(dst) * (1.0-(src%10)/100.0)) AS friendsPrev
    FROM edges GROUP BY src
 ITERATE
   SELECT node AS node,
      round(cast((friends / friendsPrev) * friends AS numeric), 5) AS friends,
      friends AS friendsPrev
   FROM forecast
 UNTIL 5 ITERATIONS )
SELECT node, friends
FROM forecast WHERE MOD(node, 100) = 0
ORDER BY friends DESC LIMIT 10;`
)

func mustParse(t *testing.T, src string) ast.Statement {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return s
}

func mustSelect(t *testing.T, src string) *ast.SelectStmt {
	t.Helper()
	s := mustParse(t, src)
	sel, ok := s.(*ast.SelectStmt)
	if !ok {
		t.Fatalf("expected SelectStmt, got %T", s)
	}
	return sel
}

func TestSimpleSelect(t *testing.T) {
	sel := mustSelect(t, "SELECT src, dst FROM edges WHERE weight > 0.5")
	core := sel.Body.(*ast.SelectCore)
	if len(core.Items) != 2 {
		t.Errorf("items = %d", len(core.Items))
	}
	if core.From.(*ast.BaseTable).Name != "edges" {
		t.Error("from table")
	}
	if core.Where == nil {
		t.Error("where missing")
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	sel := mustSelect(t, "SELECT 1 + 2 AS three")
	core := sel.Body.(*ast.SelectCore)
	if core.From != nil {
		t.Error("FROM should be nil")
	}
	if core.Items[0].Alias != "three" {
		t.Error("alias lost")
	}
}

func TestImplicitAlias(t *testing.T) {
	sel := mustSelect(t, "SELECT src s FROM edges e")
	core := sel.Body.(*ast.SelectCore)
	if core.Items[0].Alias != "s" {
		t.Errorf("implicit column alias = %q", core.Items[0].Alias)
	}
	if core.From.(*ast.BaseTable).Alias != "e" {
		t.Errorf("implicit table alias = %q", core.From.(*ast.BaseTable).Alias)
	}
}

func TestJoins(t *testing.T) {
	sel := mustSelect(t, `SELECT * FROM a LEFT JOIN b ON a.x = b.x JOIN c ON b.y = c.y`)
	core := sel.Body.(*ast.SelectCore)
	outer := core.From.(*ast.JoinRef)
	if outer.Type != ast.InnerJoin {
		t.Error("outer join type should be inner (left-assoc)")
	}
	inner := outer.Left.(*ast.JoinRef)
	if inner.Type != ast.LeftJoin {
		t.Error("inner join type should be left")
	}
	// LEFT OUTER JOIN also accepted.
	mustSelect(t, "SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x")
	// Comma = cross join.
	sel = mustSelect(t, "SELECT * FROM a, b WHERE a.x = b.x")
	if sel.Body.(*ast.SelectCore).From.(*ast.JoinRef).Type != ast.CrossJoin {
		t.Error("comma should be cross join")
	}
	// CROSS JOIN keyword.
	sel = mustSelect(t, "SELECT * FROM a CROSS JOIN b")
	if sel.Body.(*ast.SelectCore).From.(*ast.JoinRef).Type != ast.CrossJoin {
		t.Error("CROSS JOIN")
	}
}

func TestSubqueryInFrom(t *testing.T) {
	sel := mustSelect(t, "SELECT s FROM (SELECT src AS s FROM edges) AS t WHERE s > 1")
	sub := sel.Body.(*ast.SelectCore).From.(*ast.SubqueryRef)
	if sub.Alias != "t" {
		t.Errorf("alias = %q", sub.Alias)
	}
}

func TestUnion(t *testing.T) {
	sel := mustSelect(t, "SELECT src FROM edges UNION SELECT dst FROM edges UNION ALL SELECT 1")
	u := sel.Body.(*ast.UnionExpr)
	if !u.All {
		t.Error("outermost should be UNION ALL (left assoc)")
	}
	if _, ok := u.Left.(*ast.UnionExpr); !ok {
		t.Error("left should be a union")
	}
}

func TestGroupByHavingOrderLimit(t *testing.T) {
	sel := mustSelect(t, `SELECT src, COUNT(*) c FROM edges GROUP BY src
		HAVING COUNT(*) > 2 ORDER BY c DESC, src ASC LIMIT 5 OFFSET 2`)
	core := sel.Body.(*ast.SelectCore)
	if len(core.GroupBy) != 1 || core.Having == nil {
		t.Error("group by / having")
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Error("order by")
	}
	if sel.Limit == nil || sel.Offset == nil {
		t.Error("limit/offset")
	}
}

func TestExpressionPrecedence(t *testing.T) {
	sel := mustSelect(t, "SELECT 1 + 2 * 3")
	e := sel.Body.(*ast.SelectCore).Items[0].Expr
	if e.String() != "(1 + (2 * 3))" {
		t.Errorf("precedence: %s", e)
	}
	sel = mustSelect(t, "SELECT a OR b AND NOT c = 1")
	e = sel.Body.(*ast.SelectCore).Items[0].Expr
	if e.String() != "(a OR (b AND (NOT (c = 1))))" {
		t.Errorf("bool precedence: %s", e)
	}
	sel = mustSelect(t, "SELECT (1 + 2) * 3")
	e = sel.Body.(*ast.SelectCore).Items[0].Expr
	if e.String() != "((1 + 2) * 3)" {
		t.Errorf("parens: %s", e)
	}
}

func TestNegativeLiteralFolding(t *testing.T) {
	sel := mustSelect(t, "SELECT -5, -2.5, +3")
	items := sel.Body.(*ast.SelectCore).Items
	if l, ok := items[0].Expr.(*ast.Literal); !ok || l.Value != sqltypes.NewInt(-5) {
		t.Errorf("-5 not folded: %s", items[0].Expr)
	}
	if l, ok := items[1].Expr.(*ast.Literal); !ok || l.Value != sqltypes.NewFloat(-2.5) {
		t.Errorf("-2.5 not folded: %s", items[1].Expr)
	}
	if l, ok := items[2].Expr.(*ast.Literal); !ok || l.Value != sqltypes.NewInt(3) {
		t.Errorf("+3: %s", items[2].Expr)
	}
}

func TestCaseExpr(t *testing.T) {
	sel := mustSelect(t, "SELECT CASE WHEN src = 1 THEN 0 ELSE 9999999 END FROM edges")
	c := sel.Body.(*ast.SelectCore).Items[0].Expr.(*ast.CaseExpr)
	if len(c.Whens) != 1 || c.Else == nil {
		t.Error("case structure")
	}
	// Simple CASE desugars to searched.
	sel = mustSelect(t, "SELECT CASE x WHEN 1 THEN 'a' WHEN 2 THEN 'b' END")
	c = sel.Body.(*ast.SelectCore).Items[0].Expr.(*ast.CaseExpr)
	if len(c.Whens) != 2 {
		t.Fatal("simple case whens")
	}
	if c.Whens[0].Cond.String() != "(x = 1)" {
		t.Errorf("simple case desugar: %s", c.Whens[0].Cond)
	}
}

func TestCastAndFuncs(t *testing.T) {
	sel := mustSelect(t, "SELECT CAST(friends AS numeric), round(x, 5), COALESCE(a, 0), LEAST(d1, d2)")
	items := sel.Body.(*ast.SelectCore).Items
	if c, ok := items[0].Expr.(*ast.CastExpr); !ok || c.To != sqltypes.Float {
		t.Errorf("cast: %s", items[0].Expr)
	}
	if f, ok := items[1].Expr.(*ast.FuncCall); !ok || f.Name != "ROUND" || len(f.Args) != 2 {
		t.Errorf("round: %s", items[1].Expr)
	}
}

func TestCountStarAndDistinct(t *testing.T) {
	sel := mustSelect(t, "SELECT COUNT(*), COUNT(DISTINCT src) FROM edges")
	items := sel.Body.(*ast.SelectCore).Items
	if f := items[0].Expr.(*ast.FuncCall); !f.Star {
		t.Error("count(*)")
	}
	if f := items[1].Expr.(*ast.FuncCall); !f.Distinct {
		t.Error("count distinct")
	}
	sel = mustSelect(t, "SELECT DISTINCT src FROM edges")
	if !sel.Body.(*ast.SelectCore).Distinct {
		t.Error("select distinct")
	}
}

func TestPredicates(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL AND c IN (1,2) AND d NOT IN (3) AND e BETWEEN 1 AND 9 AND f NOT BETWEEN 2 AND 3")
	where := sel.Body.(*ast.SelectCore).Where
	conjs := ast.SplitConjuncts(where)
	if len(conjs) != 6 {
		t.Fatalf("conjuncts = %d", len(conjs))
	}
	if _, ok := conjs[0].(*ast.IsNullExpr); !ok {
		t.Error("IS NULL")
	}
	if n := conjs[1].(*ast.IsNullExpr); !n.Negate {
		t.Error("IS NOT NULL")
	}
	if in := conjs[3].(*ast.InExpr); !in.Negate {
		t.Error("NOT IN")
	}
	if bt := conjs[5].(*ast.BetweenExpr); !bt.Negate {
		t.Error("NOT BETWEEN")
	}
}

func TestRegularCTE(t *testing.T) {
	sel := mustSelect(t, "WITH x AS (SELECT 1 AS a), y AS (SELECT a FROM x) SELECT * FROM y")
	if sel.With == nil || len(sel.With.CTEs) != 2 {
		t.Fatal("with clause")
	}
	if sel.With.CTEs[0].Iterative {
		t.Error("regular CTE marked iterative")
	}
}

func TestIterativeCTEParsing(t *testing.T) {
	sel := mustSelect(t, PRQuery)
	if sel.With == nil || len(sel.With.CTEs) != 1 {
		t.Fatal("with clause")
	}
	cte := sel.With.CTEs[0]
	if !cte.Iterative {
		t.Fatal("not iterative")
	}
	if cte.Name != "PageRank" {
		t.Errorf("name = %q", cte.Name)
	}
	if len(cte.Cols) != 3 {
		t.Errorf("cols = %v", cte.Cols)
	}
	if cte.Until.Type != ast.TermMetadata || cte.Until.N != 10 || cte.Until.CountUpdates {
		t.Errorf("until = %+v", cte.Until)
	}
	// R0 is a select over a union subquery.
	initCore := cte.Init.Body.(*ast.SelectCore)
	if _, ok := initCore.From.(*ast.SubqueryRef); !ok {
		t.Error("R0 from should be a subquery")
	}
	// Ri has two left joins and a group by.
	iterCore := cte.Iter.Body.(*ast.SelectCore)
	if len(iterCore.GroupBy) != 2 {
		t.Errorf("Ri group by = %d", len(iterCore.GroupBy))
	}
	j := iterCore.From.(*ast.JoinRef)
	if j.Type != ast.LeftJoin {
		t.Error("Ri outer join should be left")
	}
}

func TestSSSPParsing(t *testing.T) {
	sel := mustSelect(t, SSSPQuery)
	cte := sel.With.CTEs[0]
	iterCore := cte.Iter.Body.(*ast.SelectCore)
	if iterCore.Where == nil {
		t.Error("SSSP Ri must have a WHERE clause (drives the merge path)")
	}
	// Final query has its own WHERE.
	finalCore := sel.Body.(*ast.SelectCore)
	if finalCore.Where == nil {
		t.Error("Qf WHERE missing")
	}
}

func TestFFParsing(t *testing.T) {
	sel := mustSelect(t, FFQuery)
	cte := sel.With.CTEs[0]
	if cte.Until.N != 5 {
		t.Errorf("FF iterations = %d", cte.Until.N)
	}
	if len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Error("FF order by")
	}
	if sel.Limit == nil {
		t.Error("FF limit")
	}
}

func TestTerminationVariants(t *testing.T) {
	base := "WITH ITERATIVE r (a) AS (SELECT 1 ITERATE SELECT a + 1 FROM r UNTIL %s) SELECT * FROM r"
	cases := []struct {
		until string
		check func(ast.Termination) bool
	}{
		{"3 ITERATIONS", func(tc ast.Termination) bool { return tc.Type == ast.TermMetadata && tc.N == 3 && !tc.CountUpdates }},
		{"100 UPDATES", func(tc ast.Termination) bool { return tc.Type == ast.TermMetadata && tc.N == 100 && tc.CountUpdates }},
		{"ANY (a > 5)", func(tc ast.Termination) bool { return tc.Type == ast.TermData && tc.Any && tc.Expr != nil }},
		{"ALL (a > 5)", func(tc ast.Termination) bool { return tc.Type == ast.TermData && !tc.Any }},
		{"DELTA < 1", func(tc ast.Termination) bool { return tc.Type == ast.TermDelta && tc.N == 1 }},
	}
	for _, c := range cases {
		sel := mustSelect(t, strings.Replace(base, "%s", c.until, 1))
		tc := sel.With.CTEs[0].Until
		if !c.check(tc) {
			t.Errorf("UNTIL %s parsed as %+v", c.until, tc)
		}
	}
}

func TestTerminationErrors(t *testing.T) {
	bad := []string{
		"WITH ITERATIVE r (a) AS (SELECT 1 ITERATE SELECT a FROM r UNTIL 0 ITERATIONS) SELECT * FROM r",
		"WITH ITERATIVE r (a) AS (SELECT 1 ITERATE SELECT a FROM r UNTIL -3 ITERATIONS) SELECT * FROM r",
		"WITH ITERATIVE r (a) AS (SELECT 1 ITERATE SELECT a FROM r UNTIL FOO) SELECT * FROM r",
		"WITH ITERATIVE r (a) AS (SELECT 1 ITERATE SELECT a FROM r UNTIL 5) SELECT * FROM r",
		"WITH r (a) AS (SELECT 1 ITERATE SELECT a FROM r UNTIL 5 ITERATIONS) SELECT * FROM r", // ITERATE without ITERATIVE
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestDDLDMLParsing(t *testing.T) {
	ct := mustParse(t, "CREATE TABLE pr (node int PRIMARY KEY, rank float, delta float)").(*ast.CreateTable)
	if ct.Name != "pr" || len(ct.Cols) != 3 || !ct.Cols[0].PrimaryKey {
		t.Errorf("create: %+v", ct)
	}
	ct = mustParse(t, "CREATE TEMP TABLE IF NOT EXISTS t (x int)").(*ast.CreateTable)
	if !ct.Temp || !ct.IfNotExists {
		t.Error("temp/if-not-exists flags")
	}
	dt := mustParse(t, "DROP TABLE IF EXISTS t").(*ast.DropTable)
	if !dt.IfExists {
		t.Error("drop if exists")
	}
	ins := mustParse(t, "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").(*ast.Insert)
	if len(ins.Rows) != 2 || len(ins.Cols) != 2 {
		t.Errorf("insert: %+v", ins)
	}
	ins = mustParse(t, "INSERT INTO t SELECT src, dst FROM edges").(*ast.Insert)
	if ins.Select == nil {
		t.Error("insert-select")
	}
	upd := mustParse(t, "UPDATE pr SET rank = i.rank, delta = i.delta FROM intermediate AS i WHERE pr.node = i.node").(*ast.Update)
	if len(upd.Sets) != 2 || upd.From == nil || upd.Where == nil {
		t.Errorf("update: %+v", upd)
	}
	del := mustParse(t, "DELETE FROM t WHERE x = 1").(*ast.Delete)
	if del.Where == nil {
		t.Error("delete where")
	}
	tr := mustParse(t, "TRUNCATE TABLE t").(*ast.Delete)
	if tr.Where != nil || tr.Table != "t" {
		t.Error("truncate")
	}
	ex := mustParse(t, "EXPLAIN SELECT 1").(*ast.Explain)
	if _, ok := ex.Stmt.(*ast.SelectStmt); !ok {
		t.Error("explain")
	}
}

func TestParseAllScript(t *testing.T) {
	stmts, err := ParseAll(`
		CREATE TABLE t (x int);
		INSERT INTO t VALUES (1);
		SELECT * FROM t;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Errorf("stmts = %d", len(stmts))
	}
	if _, err := ParseAll(";;;"); err == nil {
		t.Error("empty script should fail")
	}
	if _, err := ParseAll("SELECT 1 SELECT 2"); err == nil {
		t.Error("missing semicolon should fail")
	}
}

func TestParseExprStandalone(t *testing.T) {
	e, err := ParseExpr("delta < 0.001 AND node != 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(ast.SplitConjuncts(e)) != 2 {
		t.Error("conjuncts")
	}
	if _, err := ParseExpr("a +"); err == nil {
		t.Error("truncated expr should fail")
	}
	if _, err := ParseExpr("a b c"); err == nil {
		t.Error("trailing garbage should fail")
	}
}

func TestRoundTrip(t *testing.T) {
	// String() output of a parsed statement must re-parse to the same
	// string (idempotent printing).
	queries := []string{
		PRQuery, SSSPQuery, FFQuery,
		"SELECT DISTINCT a, b AS x FROM t LEFT JOIN s ON t.id = s.id WHERE a > 1 GROUP BY a, b HAVING COUNT(*) > 2 ORDER BY a DESC LIMIT 3",
		"SELECT CASE WHEN a THEN 1 ELSE 2 END FROM t",
		"INSERT INTO t (a) SELECT x FROM s",
		"UPDATE t SET a = 1 FROM s WHERE t.id = s.id",
	}
	for _, q := range queries {
		s1 := mustParse(t, q)
		printed := s1.String()
		s2, err := Parse(printed)
		if err != nil {
			t.Errorf("re-parse of %q failed: %v", printed, err)
			continue
		}
		if s2.String() != printed {
			t.Errorf("round trip not idempotent:\n first: %s\nsecond: %s", printed, s2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC 1",
		"SELECT",
		"SELECT 1 FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t JOIN s",      // missing ON
		"SELECT * FROM (SELECT 1",     // unclosed subquery
		"CREATE TABLE t (x blob)",     // unknown type
		"INSERT INTO t VALUES (1",     // unclosed values
		"SELECT CAST(x AS blob)",      // unknown cast type
		"SELECT CASE END",             // empty case
		"WITH x AS SELECT 1 SELECT 2", // missing parens
		"UPDATE t",                    // missing SET
		"SELECT a NOT 5",              // dangling NOT
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestKeywordsAsColumnNames(t *testing.T) {
	// DELTA and KEY appear as column names in the paper's schemas.
	sel := mustSelect(t, "SELECT delta, key FROM t WHERE delta != 9999999")
	items := sel.Body.(*ast.SelectCore).Items
	if items[0].Expr.(*ast.ColumnRef).Name != "delta" {
		t.Error("delta as column")
	}
	if items[1].Expr.(*ast.ColumnRef).Name != "key" {
		t.Error("key as column")
	}
}

func TestQualifiedStar(t *testing.T) {
	sel := mustSelect(t, "SELECT t.* FROM t")
	if s, ok := sel.Body.(*ast.SelectCore).Items[0].Expr.(*ast.Star); !ok || s.Table != "t" {
		t.Error("qualified star")
	}
}

func TestParenthesizedUnionBody(t *testing.T) {
	sel := mustSelect(t, "(SELECT 1) UNION (SELECT 2)")
	if _, ok := sel.Body.(*ast.UnionExpr); !ok {
		t.Error("parenthesized union arms")
	}
}
