package parser

import (
	"strings"
	"testing"
)

// FuzzParseRoundTrip checks parse → print → parse → print idempotence
// on arbitrary input: whenever the parser accepts a statement, the
// printed form must re-parse to the same printed form, and the
// provenance-carrying AST must never make printing panic. The seed
// corpus is the paper's workload queries plus one variant per
// termination type, so plain `go test` already exercises every UNTIL
// shape; `go test -fuzz=FuzzParseRoundTrip ./internal/parser` explores
// from there.
func FuzzParseRoundTrip(f *testing.F) {
	seeds := []string{
		PRQuery,
		SSSPQuery,
		FFQuery,
		"WITH ITERATIVE c (k, v) AS (SELECT src, dst FROM edges ITERATE SELECT k, v FROM c UNTIL DELTA < 1) SELECT k FROM c",
		"WITH ITERATIVE c (i) AS (SELECT 0 ITERATE SELECT i + 1 FROM c UNTIL ANY (i >= 4)) SELECT i FROM c",
		"WITH ITERATIVE c (i) AS (SELECT 0 ITERATE SELECT i + 1 FROM c UNTIL ALL (i >= 4)) SELECT i FROM c",
		"WITH ITERATIVE c (i) AS (SELECT 0 ITERATE SELECT i + 1 FROM c UNTIL 3 UPDATES) SELECT i FROM c",
		"WITH RECURSIVE r (n) AS (SELECT 1 UNION SELECT n + 1 FROM r WHERE n < 5) SELECT n FROM r",
		"SELECT DISTINCT a, b AS x FROM t LEFT JOIN s ON t.id = s.id WHERE a > 1 GROUP BY a, b HAVING COUNT(*) > 2 ORDER BY a DESC LIMIT 3",
		"SELECT CASE WHEN a THEN 1 ELSE 2 END FROM t",
		"INSERT INTO t (a) SELECT x FROM s",
		"UPDATE t SET a = 1 FROM s WHERE t.id = s.id",
		"EXPLAIN SELECT least(a, b) FROM t OFFSET 2",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		stmt, err := Parse(sql)
		if err != nil {
			return // rejecting input is fine; crashing or diverging is not
		}
		printed := stmt.String()
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form does not re-parse:\ninput: %q\nprinted: %q\nerr: %v", sql, printed, err)
		}
		if got := again.String(); got != printed {
			t.Fatalf("printing is not idempotent:\ninput: %q\n first: %q\nsecond: %q", sql, printed, got)
		}
		if strings.TrimSpace(printed) == "" {
			t.Fatalf("accepted statement printed as whitespace: input %q", sql)
		}
	})
}
