// Package parser implements a hand-written recursive-descent SQL parser
// covering the dialect used by the paper: SELECT with joins, grouping,
// set operations and subqueries; DDL and DML; and regular, recursive and
// iterative common table expressions with the ITERATE ... UNTIL grammar
// proposed in SQLoop and implemented by DBSpinner.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"dbspinner/internal/ast"
	"dbspinner/internal/lexer"
	"dbspinner/internal/sqltypes"
)

// Parser consumes a token stream.
type Parser struct {
	toks []lexer.Token
	pos  int
	src  string
}

// Parse parses a single SQL statement (an optional trailing semicolon is
// allowed).
func Parse(src string) (ast.Statement, error) {
	stmts, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("expected a single statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseAll parses a semicolon-separated script into statements.
func ParseAll(src string) ([]ast.Statement, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, src: src}
	var out []ast.Statement
	for {
		for p.acceptOp(";") {
		}
		if p.peek().Kind == lexer.EOF {
			break
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if !p.acceptOp(";") && p.peek().Kind != lexer.EOF {
			return nil, p.errHere("expected ';' or end of input")
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty statement")
	}
	return out, nil
}

// ParseExpr parses a standalone scalar expression (used by termination
// conditions supplied programmatically and by tests).
func ParseExpr(src string) (ast.Expr, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, src: src}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != lexer.EOF {
		return nil, p.errHere("unexpected trailing input after expression")
	}
	return e, nil
}

// --- token helpers ----------------------------------------------------

func (p *Parser) peek() lexer.Token { return p.toks[p.pos] }

func (p *Parser) peekAt(n int) lexer.Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *Parser) next() lexer.Token {
	t := p.toks[p.pos]
	if t.Kind != lexer.EOF {
		p.pos++
	}
	return t
}

func (p *Parser) acceptKw(kw string) bool {
	t := p.peek()
	if t.Kind == lexer.Keyword && t.Text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) peekKw(kw string) bool {
	t := p.peek()
	return t.Kind == lexer.Keyword && t.Text == kw
}

func (p *Parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errHere("expected %s", kw)
	}
	return nil
}

func (p *Parser) acceptOp(op string) bool {
	t := p.peek()
	if t.Kind == lexer.Op && t.Text == op {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) peekOp(op string) bool {
	t := p.peek()
	return t.Kind == lexer.Op && t.Text == op
}

func (p *Parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errHere("expected %q", op)
	}
	return nil
}

// ident accepts an identifier or a non-reserved keyword usable as a
// name (e.g. KEY, DELTA appear as column names in the paper's queries).
var identKeywords = map[string]bool{
	"KEY": true, "DELTA": true, "VALUES": true, "ANY": true, "ALL": true,
	"UPDATES": true, "ITERATIONS": true, "ITERATION": true, "SET": true,
	"TEMP": true, "TEMPORARY": true,
}

func (p *Parser) ident() (string, error) {
	t := p.peek()
	if t.Kind == lexer.Ident {
		p.pos++
		return t.Text, nil
	}
	if t.Kind == lexer.Keyword && identKeywords[t.Text] {
		p.pos++
		return strings.ToLower(t.Text), nil
	}
	return "", p.errHere("expected identifier")
}

func (p *Parser) errHere(format string, args ...interface{}) error {
	t := p.peek()
	loc := fmt.Sprintf("offset %d", t.Pos)
	what := t.Text
	if t.Kind == lexer.EOF {
		what = "end of input"
	}
	return fmt.Errorf("%s at %s (near %q)", fmt.Sprintf(format, args...), loc, what)
}

// --- statements -------------------------------------------------------

func (p *Parser) parseStatement() (ast.Statement, error) {
	t := p.peek()
	if t.Kind == lexer.Op && t.Text == "(" {
		// A statement may begin with a parenthesized SELECT body.
		return p.parseSelectStmt()
	}
	if t.Kind != lexer.Keyword {
		return nil, p.errHere("expected a statement keyword")
	}
	switch t.Text {
	case "SELECT", "WITH":
		return p.parseSelectStmt()
	case "CREATE":
		return p.parseCreateTable()
	case "DROP":
		return p.parseDropTable()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "TRUNCATE":
		p.next()
		p.acceptKw("TABLE")
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &ast.Delete{Table: name}, nil
	case "EXPLAIN":
		p.next()
		// ANALYZE is not a reserved word (it stays usable as an
		// identifier); accept it positionally after EXPLAIN.
		analyze := false
		if n := p.peek(); n.Kind == lexer.Ident && strings.EqualFold(n.Text, "ANALYZE") {
			p.pos++
			analyze = true
		}
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return &ast.Explain{Stmt: inner, Analyze: analyze}, nil
	}
	return nil, p.errHere("unsupported statement %s", t.Text)
}

// parseSelectStmt parses [WITH ...] select-body [ORDER BY ...] [LIMIT n].
func (p *Parser) parseSelectStmt() (*ast.SelectStmt, error) {
	stmt := &ast.SelectStmt{}
	if p.peekKw("WITH") {
		w, err := p.parseWithClause()
		if err != nil {
			return nil, err
		}
		stmt.With = w
	}
	body, err := p.parseSelectBody()
	if err != nil {
		return nil, err
	}
	stmt.Body = body
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := ast.OrderItem{Expr: e}
			if p.acceptKw("DESC") {
				item.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Limit = e
	}
	if p.acceptKw("OFFSET") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Offset = e
	}
	return stmt, nil
}

func (p *Parser) parseWithClause() (*ast.WithClause, error) {
	if err := p.expectKw("WITH"); err != nil {
		return nil, err
	}
	w := &ast.WithClause{}
	iterative := false
	if p.acceptKw("RECURSIVE") {
		w.Recursive = true
	} else if p.acceptKw("ITERATIVE") {
		iterative = true
	}
	for {
		cte, err := p.parseCTE(iterative)
		if err != nil {
			return nil, err
		}
		w.CTEs = append(w.CTEs, cte)
		if !p.acceptOp(",") {
			break
		}
		// Subsequent CTEs in a WITH ITERATIVE list may themselves be
		// iterative (they contain ITERATE) or plain; parseCTE detects
		// which form the body takes.
	}
	return w, nil
}

func (p *Parser) parseCTE(iterative bool) (*ast.CTE, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	cte := &ast.CTE{Name: name}
	if p.acceptOp("(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			cte.Cols = append(cte.Cols, col)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("AS"); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	first, err := p.parseSelectStmt()
	if err != nil {
		return nil, err
	}
	if p.peekKw("ITERATE") {
		if !iterative {
			return nil, p.errHere("ITERATE requires WITH ITERATIVE")
		}
		p.next()
		cte.Iterative = true
		cte.Init = first
		iter, err := p.parseSelectStmt()
		if err != nil {
			return nil, err
		}
		cte.Iter = iter
		if err := p.expectKw("UNTIL"); err != nil {
			return nil, err
		}
		tc, err := p.parseTermination()
		if err != nil {
			return nil, err
		}
		cte.Until = tc
	} else {
		// A CTE without ITERATE inside a WITH ITERATIVE list is a
		// plain CTE; the keyword only enables the extended grammar.
		cte.Select = first
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return cte, nil
}

// parseTermination parses the UNTIL clause:
//
//	UNTIL <n> ITERATIONS | UNTIL <n> UPDATES
//	UNTIL ANY (<expr>)   | UNTIL ALL (<expr>)
//	UNTIL DELTA < <n>
func (p *Parser) parseTermination() (ast.Termination, error) {
	var tc ast.Termination
	t := p.peek()
	switch {
	case t.Kind == lexer.IntLit:
		p.next()
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return tc, fmt.Errorf("bad iteration count %q: %v", t.Text, err)
		}
		if n <= 0 {
			return tc, fmt.Errorf("iteration count must be positive, got %d", n)
		}
		tc.Type = ast.TermMetadata
		tc.N = n
		switch {
		case p.acceptKw("ITERATIONS"), p.acceptKw("ITERATION"):
		case p.acceptKw("UPDATES"):
			tc.CountUpdates = true
		default:
			return tc, p.errHere("expected ITERATIONS or UPDATES")
		}
		return tc, nil
	case t.Kind == lexer.Keyword && (t.Text == "ANY" || t.Text == "ALL"):
		p.next()
		tc.Type = ast.TermData
		tc.Any = t.Text == "ANY"
		if err := p.expectOp("("); err != nil {
			return tc, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return tc, err
		}
		if err := p.expectOp(")"); err != nil {
			return tc, err
		}
		tc.Expr = e
		return tc, nil
	case t.Kind == lexer.Keyword && t.Text == "DELTA":
		p.next()
		tc.Type = ast.TermDelta
		if err := p.expectOp("<"); err != nil {
			return tc, err
		}
		nt := p.next()
		if nt.Kind != lexer.IntLit {
			return tc, fmt.Errorf("expected integer after DELTA <, got %q", nt.Text)
		}
		n, err := strconv.ParseInt(nt.Text, 10, 64)
		if err != nil || n <= 0 {
			return tc, fmt.Errorf("DELTA threshold must be a positive integer")
		}
		tc.N = n
		return tc, nil
	}
	return tc, p.errHere("expected termination condition")
}

// parseSelectBody parses a select core optionally combined with UNION.
// UNION is left-associative.
func (p *Parser) parseSelectBody() (ast.SelectBody, error) {
	left, err := p.parseSelectCoreOrParen()
	if err != nil {
		return nil, err
	}
	for p.peekKw("UNION") {
		p.next()
		all := p.acceptKw("ALL")
		right, err := p.parseSelectCoreOrParen()
		if err != nil {
			return nil, err
		}
		left = &ast.UnionExpr{Left: left, Right: right, All: all}
	}
	return left, nil
}

func (p *Parser) parseSelectCoreOrParen() (ast.SelectBody, error) {
	if p.peekOp("(") && p.peekAt(1).Kind == lexer.Keyword &&
		(p.peekAt(1).Text == "SELECT" || p.peekAt(1).Text == "WITH") {
		p.next() // (
		body, err := p.parseSelectBody()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return body, nil
	}
	return p.parseSelectCore()
}

func (p *Parser) parseSelectCore() (*ast.SelectCore, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	core := &ast.SelectCore{}
	if p.acceptKw("DISTINCT") {
		core.Distinct = true
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		core.Items = append(core.Items, item)
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKw("FROM") {
		from, err := p.parseFrom()
		if err != nil {
			return nil, err
		}
		core.From = from
	}
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		core.Where = e
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			core.GroupBy = append(core.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		core.Having = e
	}
	return core, nil
}

func (p *Parser) parseSelectItem() (ast.SelectItem, error) {
	// "*" or "t.*"
	if p.peekOp("*") {
		p.next()
		return ast.SelectItem{Expr: &ast.Star{}}, nil
	}
	if p.peek().Kind == lexer.Ident && p.peekAt(1).Kind == lexer.Op && p.peekAt(1).Text == "." &&
		p.peekAt(2).Kind == lexer.Op && p.peekAt(2).Text == "*" {
		tbl := p.next().Text
		p.next() // .
		p.next() // *
		return ast.SelectItem{Expr: &ast.Star{Table: tbl}}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return ast.SelectItem{}, err
	}
	item := ast.SelectItem{Expr: e}
	if p.acceptKw("AS") {
		alias, err := p.ident()
		if err != nil {
			return item, err
		}
		item.Alias = alias
	} else if p.peek().Kind == lexer.Ident {
		item.Alias = p.next().Text
	}
	return item, nil
}

// parseFrom parses the FROM clause: comma-separated refs become cross
// joins; JOIN chains are left-associative.
func (p *Parser) parseFrom() (ast.TableRef, error) {
	left, err := p.parseJoinChain()
	if err != nil {
		return nil, err
	}
	for p.acceptOp(",") {
		right, err := p.parseJoinChain()
		if err != nil {
			return nil, err
		}
		left = &ast.JoinRef{Type: ast.CrossJoin, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseJoinChain() (ast.TableRef, error) {
	left, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	for {
		var jt ast.JoinType
		switch {
		case p.peekKw("JOIN") || p.peekKw("INNER"):
			p.acceptKw("INNER")
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			jt = ast.InnerJoin
		case p.peekKw("LEFT"):
			p.next()
			p.acceptKw("OUTER")
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			jt = ast.LeftJoin
		case p.peekKw("RIGHT"):
			p.next()
			p.acceptKw("OUTER")
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			jt = ast.RightJoin
		case p.peekKw("FULL"):
			p.next()
			p.acceptKw("OUTER")
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			jt = ast.FullJoin
		case p.peekKw("CROSS"):
			p.next()
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			jt = ast.CrossJoin
		default:
			return left, nil
		}
		right, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		j := &ast.JoinRef{Type: jt, Left: left, Right: right}
		if jt != ast.CrossJoin {
			if err := p.expectKw("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			j.On = on
		}
		left = j
	}
}

func (p *Parser) parseTableRef() (ast.TableRef, error) {
	if p.acceptOp("(") {
		sel, err := p.parseSelectStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		ref := &ast.SubqueryRef{Select: sel}
		if p.acceptKw("AS") {
			a, err := p.ident()
			if err != nil {
				return nil, err
			}
			ref.Alias = a
		} else if p.peek().Kind == lexer.Ident {
			ref.Alias = p.next().Text
		}
		return ref, nil
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ref := &ast.BaseTable{Name: name}
	if p.acceptKw("AS") {
		a, err := p.ident()
		if err != nil {
			return nil, err
		}
		ref.Alias = a
	} else if p.peek().Kind == lexer.Ident {
		ref.Alias = p.next().Text
	}
	return ref, nil
}

// --- DDL / DML --------------------------------------------------------

func (p *Parser) parseCreateTable() (ast.Statement, error) {
	if err := p.expectKw("CREATE"); err != nil {
		return nil, err
	}
	ct := &ast.CreateTable{}
	if p.acceptKw("TEMP") || p.acceptKw("TEMPORARY") {
		ct.Temp = true
	}
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	if p.acceptKw("IF") {
		if err := p.expectKw("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		ct.IfNotExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ct.Name = name
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		colName, err := p.ident()
		if err != nil {
			return nil, err
		}
		typTok := p.next()
		if typTok.Kind != lexer.Ident && typTok.Kind != lexer.Keyword {
			return nil, fmt.Errorf("expected type name for column %s", colName)
		}
		typ, err := sqltypes.ParseType(typTok.Text)
		if err != nil {
			return nil, err
		}
		def := ast.ColumnDef{Name: colName, Type: typ}
		if p.acceptKw("PRIMARY") {
			if err := p.expectKw("KEY"); err != nil {
				return nil, err
			}
			def.PrimaryKey = true
		}
		ct.Cols = append(ct.Cols, def)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return ct, nil
}

func (p *Parser) parseDropTable() (ast.Statement, error) {
	if err := p.expectKw("DROP"); err != nil {
		return nil, err
	}
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	dt := &ast.DropTable{}
	if p.acceptKw("IF") {
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		dt.IfExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	dt.Name = name
	return dt, nil
}

func (p *Parser) parseInsert() (ast.Statement, error) {
	if err := p.expectKw("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &ast.Insert{Table: name}
	if p.acceptOp("(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Cols = append(ins.Cols, col)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if p.acceptKw("VALUES") {
		for {
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			var row []ast.Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			ins.Rows = append(ins.Rows, row)
			if !p.acceptOp(",") {
				break
			}
		}
		return ins, nil
	}
	sel, err := p.parseSelectStmt()
	if err != nil {
		return nil, err
	}
	ins.Select = sel
	return ins, nil
}

func (p *Parser) parseUpdate() (ast.Statement, error) {
	if err := p.expectKw("UPDATE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	u := &ast.Update{Table: name}
	if p.acceptKw("AS") {
		a, err := p.ident()
		if err != nil {
			return nil, err
		}
		u.Alias = a
	} else if p.peek().Kind == lexer.Ident {
		u.Alias = p.next().Text
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Sets = append(u.Sets, ast.Assignment{Col: col, Expr: e})
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKw("FROM") {
		from, err := p.parseFrom()
		if err != nil {
			return nil, err
		}
		u.From = from
	}
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Where = e
	}
	return u, nil
}

func (p *Parser) parseDelete() (ast.Statement, error) {
	if err := p.expectKw("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &ast.Delete{Table: name}
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Where = e
	}
	return d, nil
}
