package parser

import (
	"fmt"
	"strconv"
	"strings"

	"dbspinner/internal/ast"
	"dbspinner/internal/lexer"
	"dbspinner/internal/sqltypes"
)

// Expression grammar, lowest to highest precedence:
//
//	expr    := orExpr
//	orExpr  := andExpr { OR andExpr }
//	andExpr := notExpr { AND notExpr }
//	notExpr := NOT notExpr | predicate
//	predicate := addExpr [ cmpOp addExpr
//	            | IS [NOT] NULL
//	            | [NOT] IN ( list )
//	            | [NOT] BETWEEN addExpr AND addExpr
//	            | [NOT] LIKE addExpr ]
//	addExpr := mulExpr { (+|-|'||') mulExpr }
//	mulExpr := unary { (*|/|%) unary }
//	unary   := - unary | primary
//	primary := literal | column | func(...) | CASE | CAST | ( expr )

func (p *Parser) parseExpr() (ast.Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (ast.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &ast.BinaryExpr{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (ast.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &ast.BinaryExpr{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (ast.Expr, error) {
	if p.acceptKw("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{Op: "NOT", E: e}, nil
	}
	return p.parsePredicate()
}

func (p *Parser) parsePredicate() (ast.Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.acceptKw("IS") {
		neg := p.acceptKw("NOT")
		if err := p.expectKw("NULL"); err != nil {
			return nil, err
		}
		return &ast.IsNullExpr{E: left, Negate: neg}, nil
	}
	// [NOT] IN / BETWEEN / LIKE
	neg := false
	if p.peekKw("NOT") && (p.peekAt(1).Kind == lexer.Keyword &&
		(p.peekAt(1).Text == "IN" || p.peekAt(1).Text == "BETWEEN" || p.peekAt(1).Text == "LIKE")) {
		p.next()
		neg = true
	}
	switch {
	case p.acceptKw("IN"):
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var list []ast.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &ast.InExpr{E: left, List: list, Negate: neg}, nil
	case p.acceptKw("BETWEEN"):
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &ast.BetweenExpr{E: left, Lo: lo, Hi: hi, Negate: neg}, nil
	case p.acceptKw("LIKE"):
		pat, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		e := ast.Expr(&ast.BinaryExpr{Op: "LIKE", L: left, R: pat})
		if neg {
			e = &ast.UnaryExpr{Op: "NOT", E: e}
		}
		return e, nil
	}
	if neg {
		return nil, p.errHere("dangling NOT")
	}
	// Comparison operators.
	for _, op := range []string{"=", "!=", "<=", ">=", "<", ">"} {
		if p.acceptOp(op) {
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &ast.BinaryExpr{Op: op, L: left, R: right}, nil
		}
	}
	return left, nil
}

func (p *Parser) parseAdd() (ast.Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptOp("+"):
			op = "+"
		case p.acceptOp("-"):
			op = "-"
		case p.acceptOp("||"):
			op = "||"
		default:
			return left, nil
		}
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = &ast.BinaryExpr{Op: op, L: left, R: right}
	}
}

func (p *Parser) parseMul() (ast.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptOp("*"):
			op = "*"
		case p.acceptOp("/"):
			op = "/"
		case p.acceptOp("%"):
			op = "%"
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &ast.BinaryExpr{Op: op, L: left, R: right}
	}
}

func (p *Parser) parseUnary() (ast.Expr, error) {
	if p.acceptOp("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negation of numeric literals for cleaner plans.
		if l, ok := e.(*ast.Literal); ok {
			if v, err := sqltypes.Neg(l.Value); err == nil {
				return &ast.Literal{Value: v}, nil
			}
		}
		return &ast.UnaryExpr{Op: "-", E: e}, nil
	}
	if p.acceptOp("+") {
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (ast.Expr, error) {
	t := p.peek()
	switch t.Kind {
	case lexer.IntLit:
		p.next()
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad integer literal %q", t.Text)
		}
		return &ast.Literal{Value: sqltypes.NewInt(i)}, nil
	case lexer.FloatLit:
		p.next()
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, fmt.Errorf("bad float literal %q", t.Text)
		}
		return &ast.Literal{Value: sqltypes.NewFloat(f)}, nil
	case lexer.StringLit:
		p.next()
		return &ast.Literal{Value: sqltypes.NewString(t.Text)}, nil
	case lexer.Keyword:
		switch t.Text {
		case "NULL":
			p.next()
			return &ast.Literal{Value: sqltypes.NullValue}, nil
		case "TRUE":
			p.next()
			return &ast.Literal{Value: sqltypes.NewBool(true)}, nil
		case "FALSE":
			p.next()
			return &ast.Literal{Value: sqltypes.NewBool(false)}, nil
		case "CASE":
			return p.parseCase()
		case "CAST":
			return p.parseCast()
		}
		// Some keywords double as function names or identifiers (e.g.
		// LEFT(s, n) is out of scope, but KEY/DELTA as column names are
		// needed by Algorithm 1's merge queries).
		if identKeywords[t.Text] {
			return p.parseNameExpr()
		}
		return nil, p.errHere("unexpected keyword %s in expression", t.Text)
	case lexer.Ident:
		return p.parseNameExpr()
	case lexer.Op:
		if t.Text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errHere("unexpected token in expression")
}

// parseNameExpr handles identifiers: column refs (possibly qualified)
// and function calls.
func (p *Parser) parseNameExpr() (ast.Expr, error) {
	pos := p.peek().Pos
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	// Function call?
	if p.peekOp("(") {
		return p.parseFuncCall(name, pos)
	}
	// Qualified column?
	if p.acceptOp(".") {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &ast.ColumnRef{Table: name, Name: col, Pos: pos}, nil
	}
	return &ast.ColumnRef{Name: name, Pos: pos}, nil
}

func (p *Parser) parseFuncCall(name string, pos int) (ast.Expr, error) {
	upper := strings.ToUpper(name)
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	f := &ast.FuncCall{Name: upper, Pos: pos}
	if p.acceptOp("*") {
		f.Star = true
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	if p.acceptOp(")") {
		return f, nil
	}
	if p.acceptKw("DISTINCT") {
		f.Distinct = true
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Args = append(f.Args, e)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return f, nil
}

func (p *Parser) parseCase() (ast.Expr, error) {
	if err := p.expectKw("CASE"); err != nil {
		return nil, err
	}
	c := &ast.CaseExpr{}
	// Simple CASE (CASE expr WHEN v THEN r ...) desugars to searched
	// CASE with equality conditions.
	var operand ast.Expr
	if !p.peekKw("WHEN") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		operand = e
	}
	for p.acceptKw("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if operand != nil {
			cond = &ast.BinaryExpr{Op: "=", L: ast.CloneExpr(operand), R: cond}
		}
		if err := p.expectKw("THEN"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, ast.WhenClause{Cond: cond, Result: res})
	}
	if len(c.Whens) == 0 {
		return nil, p.errHere("CASE requires at least one WHEN")
	}
	if p.acceptKw("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *Parser) parseCast() (ast.Expr, error) {
	if err := p.expectKw("CAST"); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("AS"); err != nil {
		return nil, err
	}
	tt := p.next()
	if tt.Kind != lexer.Ident && tt.Kind != lexer.Keyword {
		return nil, p.errHere("expected type name in CAST")
	}
	typ, err := sqltypes.ParseType(tt.Text)
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &ast.CastExpr{E: e, To: typ}, nil
}
