package parser

import (
	"math/rand"
	"testing"

	"dbspinner/internal/ast"
	"dbspinner/internal/sqltypes"
)

// randExpr builds a random expression tree of bounded depth using the
// constructs the engine supports.
func randExpr(rng *rand.Rand, depth int) ast.Expr {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return &ast.Literal{Value: sqltypes.NewInt(int64(rng.Intn(100)))}
		case 1:
			return &ast.Literal{Value: sqltypes.NewFloat(float64(rng.Intn(100)) / 4)}
		case 2:
			return &ast.ColumnRef{Name: "c" + string(rune('a'+rng.Intn(4)))}
		default:
			return &ast.ColumnRef{Table: "t", Name: "c" + string(rune('a'+rng.Intn(4)))}
		}
	}
	switch rng.Intn(9) {
	case 0:
		ops := []string{"+", "-", "*", "/", "%"}
		return &ast.BinaryExpr{Op: ops[rng.Intn(len(ops))], L: randExpr(rng, depth-1), R: randExpr(rng, depth-1)}
	case 1:
		ops := []string{"=", "!=", "<", "<=", ">", ">="}
		return &ast.BinaryExpr{Op: ops[rng.Intn(len(ops))], L: randExpr(rng, depth-1), R: randExpr(rng, depth-1)}
	case 2:
		ops := []string{"AND", "OR"}
		return &ast.BinaryExpr{Op: ops[rng.Intn(2)], L: randExpr(rng, depth-1), R: randExpr(rng, depth-1)}
	case 3:
		return &ast.UnaryExpr{Op: "NOT", E: randExpr(rng, depth-1)}
	case 4:
		fns := []string{"ABS", "CEILING", "ROUND", "COALESCE", "LEAST"}
		return &ast.FuncCall{Name: fns[rng.Intn(len(fns))], Args: []ast.Expr{randExpr(rng, depth-1)}}
	case 5:
		return &ast.CaseExpr{
			Whens: []ast.WhenClause{{Cond: randExpr(rng, depth-1), Result: randExpr(rng, depth-1)}},
			Else:  randExpr(rng, depth-1),
		}
	case 6:
		return &ast.CastExpr{E: randExpr(rng, depth-1), To: sqltypes.Float}
	case 7:
		return &ast.IsNullExpr{E: randExpr(rng, depth-1), Negate: rng.Intn(2) == 0}
	default:
		return &ast.InExpr{E: randExpr(rng, depth-1),
			List:   []ast.Expr{randExpr(rng, depth-1), randExpr(rng, depth-1)},
			Negate: rng.Intn(2) == 0}
	}
}

// TestExprRoundTripProperty checks that printing any generated
// expression and re-parsing it is a fixed point: parse(print(e))
// prints identically.
func TestExprRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		e := randExpr(rng, 1+rng.Intn(4))
		printed := e.String()
		parsed, err := ParseExpr(printed)
		if err != nil {
			t.Fatalf("trial %d: re-parse of %q failed: %v", trial, printed, err)
		}
		if parsed.String() != printed {
			t.Fatalf("trial %d: round trip not a fixed point:\n first: %s\nsecond: %s",
				trial, printed, parsed.String())
		}
	}
}

// TestStatementRoundTripProperty builds random single-table SELECTs and
// round-trips them through the printer.
func TestStatementRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		sel := &ast.SelectStmt{Body: &ast.SelectCore{
			Items: []ast.SelectItem{
				{Expr: randExpr(rng, 2)},
				{Expr: randExpr(rng, 1), Alias: "x"},
			},
			From:  &ast.BaseTable{Name: "t"},
			Where: randExpr(rng, 2),
		}}
		printed := sel.String()
		parsed, err := Parse(printed)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, printed)
		}
		if parsed.String() != printed {
			t.Fatalf("trial %d:\n first: %s\nsecond: %s", trial, printed, parsed.String())
		}
	}
}

// TestParserNeverPanics feeds mutated fragments of valid queries to the
// parser; errors are fine, panics are not.
func TestParserNeverPanics(t *testing.T) {
	base := PRQuery + SSSPQuery + FFQuery
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 500; trial++ {
		// Take a random slice and splice random bytes in.
		start := rng.Intn(len(base))
		end := start + rng.Intn(len(base)-start)
		frag := []byte(base[start:end])
		for i := 0; i < 3 && len(frag) > 0; i++ {
			frag[rng.Intn(len(frag))] = byte("(),;*'abON "[rng.Intn(11)])
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on %q: %v", frag, r)
				}
			}()
			_, _ = Parse(string(frag))
			_, _ = ParseAll(string(frag))
		}()
	}
}
