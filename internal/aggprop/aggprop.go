// Package aggprop statically classifies the aggregate calls of an
// iterative CTE's plan on a decomposability lattice and proves the two
// side conditions that make incremental aggregate maintenance sound
// across the loop back-edge. It is the licensing analysis for
// core.MaintainAggStep, in the same mold as internal/converge
// (termination), internal/effects (scheduling) and internal/distprop
// (shuffle elision): a fail-closed proof whose positive outcome an
// independent verifier re-derives.
//
// The lattice, least to greatest:
//
//	Holistic   — nothing is known; the aggregate may depend on its
//	             whole input multiset in ways deltas cannot patch
//	             (MEDIAN would live here, as does any DISTINCT
//	             aggregate). Fail closed: never maintained.
//	Monotone   — monotone-decomposable: MIN/MAX whose group values
//	             provably move one way along the value lattice because
//	             the query folds the old value back into the new one
//	             through a LEAST/GREATEST envelope (the converge
//	             analysis' inflationary-merge evidence). Deltas can be
//	             folded in; retractions never need to "un-extremize"
//	             because the envelope keeps the old bound live.
//	Invertible — invertible-decomposable: SUM and COUNT form groups
//	             under +/-, so insertions fold in and retractions fold
//	             out; AVG rides along as the SUM+COUNT pair.
//
// The two side conditions, proven on the ORIGINAL iterative AST (the
// same left-deep chain shape internal/core's delta analysis accepts):
//
//	group-key stability — output column 0 is the bare key of the outer
//	    CTE reference at the head of the chain, GROUP BY includes it,
//	    and every GROUP BY expression references only outer columns.
//	    Each output group is then a function of exactly one outer row
//	    (keys are unique per iteration), so a group's identity is
//	    stable across the back-edge and "which groups changed" reduces
//	    to "which outer keys changed".
//	retraction visibility — every inner reference to the CTE is
//	    equated on its key with the outer key, directly or through a
//	    base-table equijoin (a propagation rule). A row that leaves a
//	    group between iterations is then always a row of some CTE key
//	    that changed, so the changed-key frontier the merge already
//	    computes sees every retraction; nothing silently vanishes from
//	    a group the maintainer would skip.
//
// Anything the analysis cannot prove yields Licensed=false with
// diagnostics, and the rewrite keeps the full re-aggregation plan;
// results stay byte-identical either way.
package aggprop

import (
	"fmt"
	"strings"

	"dbspinner/internal/ast"
	"dbspinner/internal/plan"
	"dbspinner/internal/sqltypes"
)

// Class is a rung of the decomposability lattice. Greater is stronger.
type Class int

const (
	// Holistic means no decomposition is known: fail closed.
	Holistic Class = iota
	// Monotone means deltas fold in under a proven one-directional
	// lattice merge (MIN/MAX with a LEAST/GREATEST envelope).
	Monotone
	// Invertible means deltas both fold in and retract out
	// (SUM/COUNT, and AVG as the SUM+COUNT pair).
	Invertible
)

func (c Class) String() string {
	switch c {
	case Invertible:
		return "invertible"
	case Monotone:
		return "monotone"
	}
	return "holistic"
}

// AggCall is one classified aggregate call.
type AggCall struct {
	Name  string // uppercased function name
	Class Class
}

func (a AggCall) String() string { return fmt.Sprintf("%s:%s", a.Name, a.Class) }

// Evidence is one link of the proof chain, mirroring
// converge.Evidence so EXPLAIN renders both the same way.
type Evidence struct {
	Rule   string
	Detail string
}

// Prop is one retraction-visibility route: a key-equijoin path from an
// inner iterative reference through a base table back to the outer
// key. It is structurally identical to core.DeltaProp but defined here
// so the analysis does not import core (core imports aggprop).
type Prop struct {
	Table string // catalog base table the equijoin path crosses
	From  int    // column equated with the inner reference's key
	To    int    // column equated with the outer reference's key
}

// Verdict is the analysis outcome for one iterative CTE.
type Verdict struct {
	CTE      string
	Licensed bool
	// Calls lists every aggregate call found in the iterative part
	// with its lattice class, licensed or not.
	Calls    []AggCall
	Evidence []Evidence
	Diags    []string
	// OuterAlias is the lowercased effective alias of the outer CTE
	// reference (the restrictable scan); empty unless Licensed.
	OuterAlias string
	// Props are the retraction-visibility routes for the inner CTE
	// references; empty unless Licensed.
	Props []Prop
}

// AnalyzeCTE classifies the aggregate calls of cte's iterative part
// and proves the side conditions. It never errors: failure is a
// Verdict with Licensed=false and diagnostics explaining the first
// obstruction found.
func AnalyzeCTE(cte *ast.CTE, schema sqltypes.Schema, lookup plan.TableLookup) Verdict {
	v := Verdict{CTE: cte.Name}
	if cte.Iter == nil || len(schema) == 0 {
		v.Diags = append(v.Diags, "no iterative part")
		return v
	}
	v.Calls = collectAggCalls(cte.Iter)
	if len(v.Calls) == 0 {
		v.Diags = append(v.Diags, "no aggregate calls in the iterative part; nothing to maintain")
		return v
	}
	a := &analysis{v: &v, cte: cte, schema: schema, lookup: lookup}
	if !a.structure() {
		return v
	}
	if !a.classify() {
		return v
	}
	if !a.groupKeyStability() {
		return v
	}
	if !a.retractionVisibility() {
		return v
	}
	v.Licensed = true
	v.OuterAlias = a.members[a.outer].alias
	return v
}

// collectAggCalls walks every expression tree of the iterative part
// and returns the aggregate calls in source order, classified later.
func collectAggCalls(stmt *ast.SelectStmt) []AggCall {
	var calls []AggCall
	ast.WalkStmtExprs(stmt, func(root ast.Expr) {
		ast.WalkExpr(root, func(e ast.Expr) bool {
			if f, ok := e.(*ast.FuncCall); ok && ast.IsAggregateName(f.Name) {
				name := strings.ToUpper(f.Name)
				if f.Distinct {
					name += " DISTINCT"
				}
				calls = append(calls, AggCall{Name: name})
			}
			return true
		})
	})
	return calls
}

// member is one leaf of the left-deep join chain.
type member struct {
	alias  string
	name   string
	isCTE  bool
	schema sqltypes.Schema
}

// analysis carries the shared state of the side-condition proofs.
type analysis struct {
	v      *Verdict
	cte    *ast.CTE
	schema sqltypes.Schema
	lookup plan.TableLookup

	core     *ast.SelectCore
	members  []member
	aliasIdx map[string]int
	joins    []joinEdge // join type + ON per member (index 0 unused)
	outer    int        // chain index of the outer CTE reference
	eqs      [][2]*ast.ColumnRef
}

type joinEdge struct {
	typ ast.JoinType
	on  ast.Expr
}

func (a *analysis) fail(format string, args ...any) bool {
	a.v.Diags = append(a.v.Diags, fmt.Sprintf(format, args...))
	return false
}

// structure checks the plain-SELECT, left-deep-chain shape the rest of
// the proofs assume, and locates the outer CTE reference: output
// column 0 must be its bare key at the head of the chain.
func (a *analysis) structure() bool {
	it := a.cte.Iter
	if it.OrderBy != nil || it.Limit != nil || it.Offset != nil {
		return a.fail("iterative part has ORDER BY/LIMIT/OFFSET; group identity across iterations unprovable")
	}
	core, ok := it.Body.(*ast.SelectCore)
	if !ok {
		return a.fail("iterative part is not a plain SELECT")
	}
	if core.Distinct {
		return a.fail("SELECT DISTINCT deduplicates across groups; maintenance unprovable")
	}
	if core.From == nil || len(core.Items) == 0 {
		return a.fail("iterative part has no FROM clause")
	}
	a.core = core

	chain, ok := flattenChain(core.From)
	if !ok {
		return a.fail("FROM is not a left-deep join chain")
	}
	a.members = make([]member, len(chain))
	a.aliasIdx = make(map[string]int, len(chain))
	a.joins = make([]joinEdge, len(chain))
	cteRefs := 0
	for i, c := range chain {
		if i > 0 && c.typ != ast.InnerJoin && c.typ != ast.LeftJoin {
			return a.fail("join %d is %s; only INNER and LEFT joins keep output keys outer-derived", i, c.typ)
		}
		bt, isBase := c.ref.(*ast.BaseTable)
		if !isBase {
			return a.fail("chain member %d is a derived table; CTE references could hide inside it", i)
		}
		m := member{alias: c.alias, name: bt.Name}
		if strings.EqualFold(bt.Name, a.cte.Name) {
			m.isCTE = true
			m.schema = a.schema
			cteRefs++
		} else if s, found := a.lookup.TableSchema(bt.Name); found {
			m.schema = s
		}
		if _, dup := a.aliasIdx[m.alias]; dup || m.alias == "" {
			return a.fail("duplicate or empty table alias %q", m.alias)
		}
		a.aliasIdx[m.alias] = i
		a.members[i] = m
		a.joins[i] = joinEdge{typ: c.typ, on: c.on}
	}
	if cteRefs == 0 || ast.CountStmtTableRefs(it, a.cte.Name) != cteRefs {
		return a.fail("references to %s hidden outside the join chain", a.cte.Name)
	}

	head, ok := core.Items[0].Expr.(*ast.ColumnRef)
	if !ok || !strings.EqualFold(head.Name, a.schema[0].Name) {
		return a.fail("output column 0 is not the bare key column %s", a.schema[0].Name)
	}
	a.outer = a.resolve(head)
	if a.outer != 0 || !a.members[0].isCTE {
		return a.fail("output key does not come from a CTE reference at the head of the chain")
	}

	// Collect the top-level equality conjuncts of every join condition
	// and the WHERE clause; both side conditions consume them.
	add := func(e ast.Expr) {
		for _, conj := range ast.SplitConjuncts(e) {
			bin, isBin := conj.(*ast.BinaryExpr)
			if !isBin || bin.Op != "=" {
				continue
			}
			l, lok := bin.L.(*ast.ColumnRef)
			r, rok := bin.R.(*ast.ColumnRef)
			if lok && rok {
				a.eqs = append(a.eqs, [2]*ast.ColumnRef{l, r})
			}
		}
	}
	for _, e := range a.joins {
		if e.on != nil {
			add(e.on)
		}
	}
	if core.Where != nil {
		add(core.Where)
	}
	a.v.Evidence = append(a.v.Evidence, Evidence{
		Rule: "chain-shape",
		Detail: fmt.Sprintf("left-deep chain of %d named tables under inner/left joins; output column 0 is "+
			"the bare key %s.%s", len(chain), a.members[0].alias, a.schema[0].Name),
	})
	return true
}

// resolve maps a column reference to the chain member that owns it;
// unqualified references must have exactly one possible owner.
func (a *analysis) resolve(ref *ast.ColumnRef) int {
	if ref.Table != "" {
		i, found := a.aliasIdx[strings.ToLower(ref.Table)]
		if !found {
			return -1
		}
		return i
	}
	owner := -1
	for i, m := range a.members {
		if m.schema == nil {
			return -1 // unknown schema: cannot prove uniqueness
		}
		if m.schema.ColumnIndex(ref.Name) >= 0 {
			if owner >= 0 {
				return -1
			}
			owner = i
		}
	}
	return owner
}

// classify assigns every aggregate call its lattice class; any call
// left Holistic blocks the license. The dispatch must cover every
// function ast.IsAggregateName accepts (the aggdispatch analyzer
// enforces this) and defaults to Holistic.
func (a *analysis) classify() bool {
	envDown, envUp := a.envelopes()
	ok := true
	for i := range a.v.Calls {
		c := &a.v.Calls[i]
		if strings.HasSuffix(c.Name, " DISTINCT") {
			c.Class = Holistic
			ok = a.fail("%s depends on the whole group multiset; deltas cannot patch a DISTINCT set", c.Name)
			continue
		}
		switch c.Name {
		case "SUM", "COUNT":
			c.Class = Invertible
			a.v.Evidence = append(a.v.Evidence, Evidence{
				Rule:   "invertible",
				Detail: c.Name + " forms a group under +/-: insertions fold in, retractions fold out",
			})
		case "AVG":
			c.Class = Invertible
			a.v.Evidence = append(a.v.Evidence, Evidence{
				Rule:   "invertible",
				Detail: "AVG maintained as the SUM+COUNT pair, each invertible under +/-",
			})
		case "MIN":
			if envDown {
				c.Class = Monotone
				a.v.Evidence = append(a.v.Evidence, Evidence{
					Rule: "monotone-envelope",
					Detail: "MIN under a LEAST envelope that folds the outer row's old value back in: " +
						"group values only move downward, so a retracted candidate never has to " +
						"\"un-minimize\" a group",
				})
			} else {
				c.Class = Holistic
				ok = a.fail("MIN without a LEAST envelope over the outer reference: a retraction could " +
					"remove the current minimum and nothing proves the old bound stays live")
			}
		case "MAX":
			if envUp {
				c.Class = Monotone
				a.v.Evidence = append(a.v.Evidence, Evidence{
					Rule: "monotone-envelope",
					Detail: "MAX under a GREATEST envelope that folds the outer row's old value back in: " +
						"group values only move upward, so a retracted candidate never has to " +
						"\"un-maximize\" a group",
				})
			} else {
				c.Class = Holistic
				ok = a.fail("MAX without a GREATEST envelope over the outer reference: a retraction could " +
					"remove the current maximum and nothing proves the old bound stays live")
			}
		default:
			c.Class = Holistic
			ok = a.fail("%s has no known decomposition; fail closed", c.Name)
		}
	}
	return ok
}

// envelopes reports whether some select item folds an outer column
// through LEAST (downward envelope, licensing MIN) or GREATEST
// (upward, licensing MAX) — the same inflationary-merge shape the
// converge analysis proves monotone.
func (a *analysis) envelopes() (down, up bool) {
	for _, it := range a.core.Items {
		call, ok := it.Expr.(*ast.FuncCall)
		if !ok || call.Star || call.Distinct {
			continue
		}
		var isDown bool
		switch strings.ToUpper(call.Name) {
		case "LEAST":
			isDown = true
		case "GREATEST":
			isDown = false
		default:
			continue
		}
		for _, arg := range call.Args {
			ref, isRef := arg.(*ast.ColumnRef)
			if isRef && a.resolve(ref) == a.outer {
				if isDown {
					down = true
				} else {
					up = true
				}
				break
			}
		}
	}
	return down, up
}

// groupKeyStability proves each output group is a function of exactly
// one outer row: GROUP BY is present, includes the outer key, and
// every GROUP BY expression references only outer columns. Grouping
// then refines "one group per outer key", and since keys are unique
// per iteration, a group's identity is stable across the back-edge.
func (a *analysis) groupKeyStability() bool {
	if len(a.core.GroupBy) == 0 {
		return a.fail("no GROUP BY; scalar aggregates over the whole iteration have no per-key groups to maintain")
	}
	keyName := a.schema[0].Name
	grouped := false
	for _, g := range a.core.GroupBy {
		if ref, isRef := g.(*ast.ColumnRef); isRef &&
			strings.EqualFold(ref.Name, keyName) && a.resolve(ref) == a.outer {
			grouped = true
		}
		outerOnly := true
		ast.WalkExpr(g, func(e ast.Expr) bool {
			if ref, isRef := e.(*ast.ColumnRef); isRef && a.resolve(ref) != a.outer {
				outerOnly = false
				return false
			}
			return true
		})
		if !outerOnly {
			return a.fail("GROUP BY expression %s reads non-outer columns; group identity could shift "+
				"between iterations without the key changing", g)
		}
	}
	if !grouped {
		return a.fail("GROUP BY does not include the outer key %s", keyName)
	}
	a.v.Evidence = append(a.v.Evidence, Evidence{
		Rule: "group-key-stability",
		Detail: fmt.Sprintf("GROUP BY includes the outer key %s and every grouping expression reads only "+
			"%s columns: one group per outer key, identity stable across the back-edge",
			keyName, a.members[a.outer].alias),
	})
	return true
}

// retractionVisibility proves every inner CTE reference is routed back
// to the outer key: directly equated, or through a base-table equijoin
// yielding a propagation rule. Any group whose input rows change
// between iterations is then a group of some affected key, so folding
// only the frontier's groups misses no retraction.
func (a *analysis) retractionVisibility() bool {
	keyName := a.schema[0].Name
	keyEq := func(ref *ast.ColumnRef, i int) bool {
		return strings.EqualFold(ref.Name, keyName) && a.resolve(ref) == i
	}
	for i, m := range a.members {
		if !m.isCTE || i == a.outer {
			continue
		}
		routed := false
		for _, eq := range a.eqs {
			var other *ast.ColumnRef
			switch {
			case keyEq(eq[0], i):
				other = eq[1]
			case keyEq(eq[1], i):
				other = eq[0]
			default:
				continue
			}
			if keyEq(other, a.outer) {
				routed = true
				a.v.Evidence = append(a.v.Evidence, Evidence{
					Rule:   "retraction-visibility",
					Detail: fmt.Sprintf("inner reference %s equated with the outer key directly", m.alias),
				})
				break
			}
			bi := a.resolve(other)
			if bi < 0 || a.members[bi].isCTE || a.members[bi].schema == nil {
				continue
			}
			from := a.members[bi].schema.ColumnIndex(other.Name)
			if from < 0 {
				continue
			}
			for _, eq2 := range a.eqs {
				var bcol *ast.ColumnRef
				switch {
				case keyEq(eq2[0], a.outer) && a.resolve(eq2[1]) == bi:
					bcol = eq2[1]
				case keyEq(eq2[1], a.outer) && a.resolve(eq2[0]) == bi:
					bcol = eq2[0]
				default:
					continue
				}
				to := a.members[bi].schema.ColumnIndex(bcol.Name)
				if to < 0 {
					continue
				}
				a.v.Props = append(a.v.Props, Prop{Table: a.members[bi].name, From: from, To: to})
				a.v.Evidence = append(a.v.Evidence, Evidence{
					Rule: "retraction-visibility",
					Detail: fmt.Sprintf("inner reference %s routed to the outer key through %s[%d->%d]: "+
						"every row leaving a group belongs to a changed key's equijoin image",
						m.alias, a.members[bi].name, from, to),
				})
				routed = true
				break
			}
			if routed {
				break
			}
		}
		if !routed {
			return a.fail("inner reference %s has no key-equijoin route to the outer key; a row could "+
				"leave one of its groups invisibly to the frontier", m.alias)
		}
	}
	return true
}

// chainItem mirrors core's flattenChain leaf (reimplemented here so
// the analysis does not import core).
type chainItem struct {
	ref   ast.TableRef
	typ   ast.JoinType
	on    ast.Expr
	alias string
}

func flattenChain(t ast.TableRef) ([]chainItem, bool) {
	switch x := t.(type) {
	case *ast.JoinRef:
		left, ok := flattenChain(x.Left)
		if !ok {
			return nil, false
		}
		if _, isJoin := x.Right.(*ast.JoinRef); isJoin {
			return nil, false // left-deep chains only
		}
		return append(left, chainItem{ref: x.Right, typ: x.Type, on: x.On, alias: refAlias(x.Right)}), true
	default:
		return []chainItem{{ref: t, alias: refAlias(t)}}, true
	}
}

func refAlias(t ast.TableRef) string {
	switch x := t.(type) {
	case *ast.BaseTable:
		if x.Alias != "" {
			return strings.ToLower(x.Alias)
		}
		return strings.ToLower(x.Name)
	case *ast.SubqueryRef:
		return strings.ToLower(x.Alias)
	}
	return ""
}
