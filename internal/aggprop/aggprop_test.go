package aggprop

import (
	"strings"
	"testing"

	"dbspinner/internal/ast"
	"dbspinner/internal/parser"
	"dbspinner/internal/sqltypes"
)

// fakeLookup resolves the small catalog the tests share.
type fakeLookup struct {
	tables map[string]sqltypes.Schema
}

func (f *fakeLookup) TableSchema(name string) (sqltypes.Schema, bool) {
	s, ok := f.tables[strings.ToLower(name)]
	return s, ok
}

func (f *fakeLookup) ResultSchema(string) (sqltypes.Schema, bool) { return nil, false }

func newLookup() *fakeLookup {
	return &fakeLookup{tables: map[string]sqltypes.Schema{
		"edges": {
			{Name: "src", Type: sqltypes.Int},
			{Name: "dst", Type: sqltypes.Int},
			{Name: "weight", Type: sqltypes.Float},
		},
		"vertexstatus": {
			{Name: "node", Type: sqltypes.Int},
			{Name: "status", Type: sqltypes.Int},
		},
	}}
}

// cteOf parses a full iterative query and returns its first CTE plus
// the CTE schema the rewriter would hand the analysis (column names
// from the declared list; types are irrelevant to the analysis).
func cteOf(t *testing.T, sql string) (*ast.CTE, sqltypes.Schema) {
	t.Helper()
	stmt, err := parser.Parse(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sel, ok := stmt.(*ast.SelectStmt)
	if !ok || sel.With == nil || len(sel.With.CTEs) == 0 {
		t.Fatalf("no CTE in %q", sql)
	}
	cte := sel.With.CTEs[0]
	schema := make(sqltypes.Schema, len(cte.Cols))
	for i, c := range cte.Cols {
		schema[i] = sqltypes.Column{Name: c, Type: sqltypes.Float}
	}
	return cte, schema
}

func analyze(t *testing.T, sql string) Verdict {
	t.Helper()
	cte, schema := cteOf(t, sql)
	return AnalyzeCTE(cte, schema, newLookup())
}

func hasRule(v Verdict, rule string) bool {
	for _, e := range v.Evidence {
		if e.Rule == rule {
			return true
		}
	}
	return false
}

func diagsContain(v Verdict, frag string) bool {
	for _, d := range v.Diags {
		if strings.Contains(d, frag) {
			return true
		}
	}
	return false
}

const prSQL = `WITH ITERATIVE PageRank (Node, Rank, Delta)
AS ( SELECT src, 0, 0.15
     FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
 ITERATE
  SELECT PageRank.node,
    PageRank.rank + PageRank.delta,
    0.85 * SUM(IncomingRank.delta * IncomingEdges.Weight)
  FROM PageRank
    LEFT JOIN edges AS IncomingEdges ON PageRank.node = IncomingEdges.dst
    LEFT JOIN PageRank AS IncomingRank ON IncomingRank.node = IncomingEdges.src
  GROUP BY PageRank.node, PageRank.rank + PageRank.delta
 UNTIL 3 ITERATIONS )
SELECT Node, Rank FROM PageRank`

const ssspSQL = `WITH ITERATIVE sssp (Node, Distance, Delta)
AS (SELECT src, 9999999, CASE WHEN src = 1 THEN 0 ELSE 9999999 END
 FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
 ITERATE
  SELECT sssp.node,
    LEAST(sssp.distance, sssp.delta),
    COALESCE(MIN(IncomingDistance.delta + IncomingEdges.weight), 9999999)
  FROM sssp
   LEFT JOIN edges AS IncomingEdges ON sssp.node = IncomingEdges.dst
   LEFT JOIN sssp AS IncomingDistance ON IncomingDistance.node = IncomingEdges.src
  WHERE IncomingDistance.Delta != 9999999
  GROUP BY sssp.node, LEAST(sssp.distance, sssp.delta)
 UNTIL 3 ITERATIONS)
SELECT Node, Distance FROM sssp`

func TestPRLicensedInvertible(t *testing.T) {
	v := analyze(t, prSQL)
	if !v.Licensed {
		t.Fatalf("PR not licensed: %v", v.Diags)
	}
	if len(v.Calls) != 1 || v.Calls[0].Name != "SUM" || v.Calls[0].Class != Invertible {
		t.Errorf("calls = %v, want [SUM:invertible]", v.Calls)
	}
	if v.OuterAlias != "pagerank" {
		t.Errorf("outer alias = %q", v.OuterAlias)
	}
	for _, rule := range []string{"chain-shape", "invertible", "group-key-stability", "retraction-visibility"} {
		if !hasRule(v, rule) {
			t.Errorf("missing evidence rule %q in %v", rule, v.Evidence)
		}
	}
	// The inner self-reference routes through edges[src->dst]: the
	// propagation rule the runtime closes the frontier with.
	if len(v.Props) != 1 || v.Props[0].Table != "edges" || v.Props[0].From != 0 || v.Props[0].To != 1 {
		t.Errorf("props = %v, want edges[0->1]", v.Props)
	}
}

func TestSSSPLicensedMonotone(t *testing.T) {
	v := analyze(t, ssspSQL)
	if !v.Licensed {
		t.Fatalf("SSSP not licensed: %v", v.Diags)
	}
	if len(v.Calls) != 1 || v.Calls[0].Name != "MIN" || v.Calls[0].Class != Monotone {
		t.Errorf("calls = %v, want [MIN:monotone]", v.Calls)
	}
	if !hasRule(v, "monotone-envelope") {
		t.Errorf("missing monotone-envelope evidence: %v", v.Evidence)
	}
	if len(v.Props) != 1 || v.Props[0].Table != "edges" {
		t.Errorf("props = %v, want one edges route", v.Props)
	}
}

func TestMinWithoutEnvelopeFailsClosed(t *testing.T) {
	// Drop the LEAST envelope: the old bound is no longer folded back
	// in, so a retraction could remove the current minimum.
	sql := strings.ReplaceAll(ssspSQL, "LEAST(sssp.distance, sssp.delta)", "sssp.distance")
	v := analyze(t, sql)
	if v.Licensed {
		t.Fatal("MIN without a LEAST envelope must not be licensed")
	}
	if len(v.Calls) != 1 || v.Calls[0].Class != Holistic {
		t.Errorf("calls = %v, want MIN demoted to holistic", v.Calls)
	}
	if !diagsContain(v, "LEAST envelope") {
		t.Errorf("diags = %v", v.Diags)
	}
}

func TestMaxRequiresGreatestEnvelope(t *testing.T) {
	// MAX under a GREATEST envelope is the upward mirror of SSSP.
	sql := strings.ReplaceAll(ssspSQL, "LEAST", "GREATEST")
	sql = strings.ReplaceAll(sql, "MIN(", "MAX(")
	v := analyze(t, sql)
	if !v.Licensed {
		t.Fatalf("MAX under GREATEST not licensed: %v", v.Diags)
	}
	if v.Calls[0].Name != "MAX" || v.Calls[0].Class != Monotone {
		t.Errorf("calls = %v", v.Calls)
	}
	// ... but a LEAST envelope does not license MAX: the directions
	// must match.
	sql = strings.ReplaceAll(ssspSQL, "MIN(", "MAX(")
	v = analyze(t, sql)
	if v.Licensed {
		t.Fatal("MAX under a LEAST envelope must not be licensed")
	}
	if !diagsContain(v, "GREATEST envelope") {
		t.Errorf("diags = %v", v.Diags)
	}
}

func TestDistinctFailsClosed(t *testing.T) {
	sql := strings.Replace(prSQL, "SUM(", "SUM(DISTINCT ", 1)
	v := analyze(t, sql)
	if v.Licensed {
		t.Fatal("SUM DISTINCT must not be licensed")
	}
	if len(v.Calls) != 1 || v.Calls[0].Name != "SUM DISTINCT" || v.Calls[0].Class != Holistic {
		t.Errorf("calls = %v, want [SUM DISTINCT:holistic]", v.Calls)
	}
	if !diagsContain(v, "DISTINCT") {
		t.Errorf("diags = %v", v.Diags)
	}
}

func TestGroupKeyMustIncludeOuterKey(t *testing.T) {
	// Group on the rank expression only: groups are no longer keyed by
	// the outer Node, so their identity can shift across the back-edge.
	sql := strings.Replace(prSQL,
		"GROUP BY PageRank.node, PageRank.rank + PageRank.delta",
		"GROUP BY PageRank.rank + PageRank.delta", 1)
	v := analyze(t, sql)
	if v.Licensed {
		t.Fatal("GROUP BY without the outer key must not be licensed")
	}
	if !diagsContain(v, "outer key") {
		t.Errorf("diags = %v", v.Diags)
	}
}

func TestGroupKeyMustReadOuterOnly(t *testing.T) {
	// A grouping expression reading a joined table's column can change
	// value without the outer key changing.
	sql := strings.Replace(prSQL,
		"GROUP BY PageRank.node, PageRank.rank + PageRank.delta",
		"GROUP BY PageRank.node, IncomingEdges.weight", 1)
	v := analyze(t, sql)
	if v.Licensed {
		t.Fatal("GROUP BY over non-outer columns must not be licensed")
	}
	if !diagsContain(v, "non-outer columns") {
		t.Errorf("diags = %v", v.Diags)
	}
}

func TestUnroutedInnerReferenceFailsClosed(t *testing.T) {
	// Join the inner self-reference on a non-key column: no equijoin
	// path routes its rows back to the outer key, so a retraction could
	// leave a group invisibly to the frontier.
	sql := strings.Replace(ssspSQL,
		"ON IncomingDistance.node = IncomingEdges.src",
		"ON IncomingDistance.delta = IncomingEdges.weight", 1)
	v := analyze(t, sql)
	if v.Licensed {
		t.Fatal("unrouted inner reference must not be licensed")
	}
	if !diagsContain(v, "no key-equijoin route") {
		t.Errorf("diags = %v", v.Diags)
	}
}

func TestNoAggregatesNothingToMaintain(t *testing.T) {
	v := analyze(t, `WITH ITERATIVE f (node, friends)
AS ( SELECT src, 1 FROM edges
 ITERATE SELECT node, friends * 2 FROM f
 UNTIL 3 ITERATIONS )
SELECT node, friends FROM f`)
	if v.Licensed || len(v.Calls) != 0 {
		t.Fatalf("verdict = %+v, want unlicensed with no calls", v)
	}
	if !diagsContain(v, "no aggregate calls") {
		t.Errorf("diags = %v", v.Diags)
	}
}

func TestClassStrings(t *testing.T) {
	if Holistic.String() != "holistic" || Monotone.String() != "monotone" || Invertible.String() != "invertible" {
		t.Error("Class.String drifted")
	}
	if s := (AggCall{Name: "SUM", Class: Invertible}).String(); s != "SUM:invertible" {
		t.Errorf("AggCall.String = %q", s)
	}
}
