package expr

import (
	"strings"
	"testing"

	"dbspinner/internal/parser"
	"dbspinner/internal/sqltypes"
)

// evalStr compiles and evaluates a standalone expression over a test
// row with columns a=1 (int), b=2.5 (float), s='hi', n=NULL, t=true.
func evalStr(t *testing.T, src string) sqltypes.Value {
	t.Helper()
	env := NewEnv("t", sqltypes.Schema{
		{Name: "a", Type: sqltypes.Int},
		{Name: "b", Type: sqltypes.Float},
		{Name: "s", Type: sqltypes.String},
		{Name: "n", Type: sqltypes.Int},
		{Name: "t", Type: sqltypes.Bool},
	})
	e, err := parser.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	c, err := Compile(e, env)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	row := sqltypes.Row{
		sqltypes.NewInt(1), sqltypes.NewFloat(2.5), sqltypes.NewString("hi"),
		sqltypes.NullValue, sqltypes.NewBool(true),
	}
	v, err := c.Eval(row)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestArithmeticEval(t *testing.T) {
	cases := map[string]sqltypes.Value{
		"a + 1":      sqltypes.NewInt(2),
		"a + b":      sqltypes.NewFloat(3.5),
		"b * 2":      sqltypes.NewFloat(5),
		"7 / 2":      sqltypes.NewInt(3),
		"7.0 / 2":    sqltypes.NewFloat(3.5),
		"a % 2":      sqltypes.NewInt(1),
		"-a":         sqltypes.NewInt(-1),
		"a + n":      sqltypes.NullValue,
		"'x' || 'y'": sqltypes.NewString("xy"),
		"'v' || a":   sqltypes.NewString("v1"),
	}
	for src, want := range cases {
		got := evalStr(t, src)
		if got != want {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestComparisonsEval(t *testing.T) {
	cases := map[string]sqltypes.Value{
		"a = 1":    sqltypes.NewBool(true),
		"a != 1":   sqltypes.NewBool(false),
		"a < b":    sqltypes.NewBool(true),
		"b >= 2.5": sqltypes.NewBool(true),
		"a > n":    sqltypes.NullValue,
		"s = 'hi'": sqltypes.NewBool(true),
		"1 = 1.0":  sqltypes.NewBool(true),
	}
	for src, want := range cases {
		got := evalStr(t, src)
		if got != want {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestLogicEval(t *testing.T) {
	cases := map[string]sqltypes.Value{
		"a = 1 AND b > 2": sqltypes.NewBool(true),
		"a = 2 OR b > 2":  sqltypes.NewBool(true),
		"NOT a = 2":       sqltypes.NewBool(true),
		"a = 1 AND n = 1": sqltypes.NullValue,
		"a = 2 AND n = 1": sqltypes.NewBool(false), // short-circuit false
		"a = 1 OR n = 1":  sqltypes.NewBool(true),  // short-circuit true
		"n = 1 OR a = 1":  sqltypes.NewBool(true),
		"n = 1 AND a = 2": sqltypes.NewBool(false),
	}
	for src, want := range cases {
		got := evalStr(t, src)
		if got != want {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestPredicatesEval(t *testing.T) {
	cases := map[string]sqltypes.Value{
		"n IS NULL":             sqltypes.NewBool(true),
		"a IS NULL":             sqltypes.NewBool(false),
		"a IS NOT NULL":         sqltypes.NewBool(true),
		"a IN (1, 2, 3)":        sqltypes.NewBool(true),
		"a IN (2, 3)":           sqltypes.NewBool(false),
		"a NOT IN (2, 3)":       sqltypes.NewBool(true),
		"a IN (2, n)":           sqltypes.NullValue, // no match + NULL = unknown
		"n IN (1)":              sqltypes.NullValue,
		"a BETWEEN 0 AND 2":     sqltypes.NewBool(true),
		"a NOT BETWEEN 0 AND 2": sqltypes.NewBool(false),
		"s LIKE 'h%'":           sqltypes.NewBool(true),
		"s LIKE 'H%'":           sqltypes.NewBool(false),
		"s LIKE '_i'":           sqltypes.NewBool(true),
		"s LIKE 'x%'":           sqltypes.NewBool(false),
		"s NOT LIKE 'x%'":       sqltypes.NewBool(true),
		"n LIKE 'x'":            sqltypes.NullValue,
	}
	for src, want := range cases {
		got := evalStr(t, src)
		if got != want {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestCaseEval(t *testing.T) {
	cases := map[string]sqltypes.Value{
		"CASE WHEN a = 1 THEN 'one' ELSE 'other' END": sqltypes.NewString("one"),
		"CASE WHEN a = 2 THEN 'two' ELSE 'other' END": sqltypes.NewString("other"),
		"CASE WHEN a = 2 THEN 'two' END":              sqltypes.NullValue,
		"CASE a WHEN 1 THEN 10 WHEN 2 THEN 20 END":    sqltypes.NewInt(10),
		"CASE WHEN n = 1 THEN 'x' ELSE 'y' END":       sqltypes.NewString("y"), // UNKNOWN cond skips arm
	}
	for src, want := range cases {
		got := evalStr(t, src)
		if got != want {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestCastEval(t *testing.T) {
	cases := map[string]sqltypes.Value{
		"CAST(b AS int)":     sqltypes.NewInt(2),
		"CAST(a AS float)":   sqltypes.NewFloat(1),
		"CAST(a AS varchar)": sqltypes.NewString("1"),
		"CAST('7' AS int)":   sqltypes.NewInt(7),
		"CAST(n AS int)":     sqltypes.NullValue,
		"CAST(a AS numeric)": sqltypes.NewFloat(1),
	}
	for src, want := range cases {
		got := evalStr(t, src)
		if got != want {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestScalarFuncsEval(t *testing.T) {
	cases := map[string]sqltypes.Value{
		"ABS(-5)":               sqltypes.NewInt(5),
		"ABS(-2.5)":             sqltypes.NewFloat(2.5),
		"CEILING(2.1)":          sqltypes.NewFloat(3),
		"CEIL(2.0)":             sqltypes.NewFloat(2),
		"FLOOR(2.9)":            sqltypes.NewFloat(2),
		"ROUND(2.567, 2)":       sqltypes.NewFloat(2.57),
		"ROUND(2.4)":            sqltypes.NewFloat(2),
		"ROUND(n, 2)":           sqltypes.NullValue,
		"MOD(7, 3)":             sqltypes.NewInt(1),
		"MOD(a, 2)":             sqltypes.NewInt(1),
		"POWER(2, 10)":          sqltypes.NewFloat(1024),
		"SQRT(9)":               sqltypes.NewFloat(3),
		"LEAST(3, 1, 2)":        sqltypes.NewInt(1),
		"LEAST(3, n, 2)":        sqltypes.NewInt(2), // NULLs ignored
		"LEAST(n, n)":           sqltypes.NullValue,
		"GREATEST(3, 1, 2)":     sqltypes.NewInt(3),
		"GREATEST(1, 2.5)":      sqltypes.NewFloat(2.5),
		"COALESCE(n, n, 7)":     sqltypes.NewInt(7),
		"COALESCE(a, 9)":        sqltypes.NewInt(1),
		"COALESCE(n, n)":        sqltypes.NullValue,
		"NULLIF(1, 1)":          sqltypes.NullValue,
		"NULLIF(1, 2)":          sqltypes.NewInt(1),
		"UPPER(s)":              sqltypes.NewString("HI"),
		"LOWER('AbC')":          sqltypes.NewString("abc"),
		"LENGTH(s)":             sqltypes.NewInt(2),
		"SUBSTR('hello', 2, 3)": sqltypes.NewString("ell"),
		"SUBSTR('hello', 2)":    sqltypes.NewString("ello"),
		"CONCAT('a', n, 'b')":   sqltypes.NewString("ab"),
		"SIGN(-4)":              sqltypes.NewInt(-1),
		"SIGN(0)":               sqltypes.NewInt(0),
		"EXP(0)":                sqltypes.NewFloat(1),
		"LN(1)":                 sqltypes.NewFloat(0),
	}
	for src, want := range cases {
		got := evalStr(t, src)
		if got != want {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	env := NewEnv("t", sqltypes.Schema{{Name: "a", Type: sqltypes.Int}})
	bad := []string{
		"zzz",            // unknown column
		"t.zzz",          // unknown qualified column
		"x.a",            // unknown table
		"NOSUCHFUNC(a)",  // unknown function
		"SUM(a)",         // aggregate outside agg context
		"ROUND(a, 1, 2)", // too many args
		"MOD(a)",         // too few args
	}
	for _, src := range bad {
		e, err := parser.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Compile(e, env); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	env := NewEnv("t1", sqltypes.Schema{{Name: "x", Type: sqltypes.Int}})
	env.Add("t2", sqltypes.Schema{{Name: "x", Type: sqltypes.Int}})
	e, _ := parser.ParseExpr("x")
	if _, err := Compile(e, env); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous ref should fail, got %v", err)
	}
	// Qualified refs resolve.
	e, _ = parser.ParseExpr("t2.x")
	c, err := Compile(e, env)
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Eval(sqltypes.Row{sqltypes.NewInt(1), sqltypes.NewInt(2)})
	if err != nil || v != sqltypes.NewInt(2) {
		t.Errorf("t2.x = %v, %v", v, err)
	}
}

func TestEnvResolveCaseInsensitive(t *testing.T) {
	env := NewEnv("PageRank", sqltypes.Schema{{Name: "Node", Type: sqltypes.Int}})
	if _, err := env.Resolve("pagerank", "NODE"); err != nil {
		t.Errorf("case-insensitive resolve failed: %v", err)
	}
	if _, err := env.Resolve("", "node"); err != nil {
		t.Errorf("unqualified resolve failed: %v", err)
	}
}

func TestTypeInference(t *testing.T) {
	env := NewEnv("t", sqltypes.Schema{
		{Name: "a", Type: sqltypes.Int},
		{Name: "b", Type: sqltypes.Float},
	})
	cases := map[string]sqltypes.Type{
		"a":                                   sqltypes.Int,
		"b":                                   sqltypes.Float,
		"a + 1":                               sqltypes.Int,
		"a + b":                               sqltypes.Float,
		"a = 1":                               sqltypes.Bool,
		"CAST(a AS varchar)":                  sqltypes.String,
		"CASE WHEN a = 1 THEN 1 ELSE 2.0 END": sqltypes.Float,
		"COALESCE(NULL, a)":                   sqltypes.Int,
		"LEAST(a, b)":                         sqltypes.Float,
		"COUNT_MISSING_IS_UNKNOWN":            sqltypes.Unknown,
	}
	for src, want := range cases {
		e, err := parser.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if got := InferType(e, env); got != want {
			t.Errorf("InferType(%s) = %v, want %v", src, got, want)
		}
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h__lo", true},
		{"hello", "x%", false},
		{"hello", "", false},
		{"", "%", true},
		{"", "", true},
		{"abc", "%%", true},
		{"abc", "a%c", true},
		{"abc", "a%d", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}
