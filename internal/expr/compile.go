// Package expr compiles AST expressions into evaluators bound to a row
// layout, and implements the scalar and aggregate function library used
// by the paper's queries (LEAST, COALESCE, CEILING, ROUND, MOD, SUM,
// MIN, COUNT, ...).
//
// Aggregate function calls are not compiled here: the planner extracts
// them into aggregate-output columns first (see internal/plan), so the
// compiler treats a remaining aggregate call as an error.
package expr

import (
	"fmt"
	"strings"

	"dbspinner/internal/ast"
	"dbspinner/internal/sqltypes"
)

// Binding describes one input column visible to an expression: the
// (lowercased) table alias it belongs to, its (lowercased) name, and
// its position and type in the input row.
type Binding struct {
	Table string
	Name  string
	Index int
	Type  sqltypes.Type
}

// Env is the name-resolution environment for compilation: the ordered
// list of visible columns.
type Env struct {
	Cols []Binding
}

// NewEnv builds an Env from a schema, attributing every column to the
// given table alias.
func NewEnv(table string, schema sqltypes.Schema) *Env {
	e := &Env{}
	e.Add(table, schema)
	return e
}

// Add appends a table's columns to the environment (used when joining:
// left columns first, then right).
func (e *Env) Add(table string, schema sqltypes.Schema) {
	base := len(e.Cols)
	lt := strings.ToLower(table)
	for i, c := range schema {
		e.Cols = append(e.Cols, Binding{
			Table: lt,
			Name:  strings.ToLower(c.Name),
			Index: base + i,
			Type:  c.Type,
		})
	}
}

// Resolve finds the unique column matching an optionally-qualified
// reference.
func (e *Env) Resolve(table, name string) (Binding, error) {
	lt, ln := strings.ToLower(table), strings.ToLower(name)
	var found []Binding
	for _, b := range e.Cols {
		if b.Name != ln {
			continue
		}
		if lt != "" && b.Table != lt {
			continue
		}
		found = append(found, b)
	}
	switch len(found) {
	case 0:
		if table != "" {
			return Binding{}, fmt.Errorf("column %s.%s does not exist", table, name)
		}
		return Binding{}, fmt.Errorf("column %s does not exist", name)
	case 1:
		return found[0], nil
	default:
		return Binding{}, fmt.Errorf("column reference %q is ambiguous", name)
	}
}

// Compiled is an executable expression.
type Compiled struct {
	// Eval computes the expression over an input row.
	Eval func(row sqltypes.Row) (sqltypes.Value, error)
	// Type is the statically inferred result type.
	Type sqltypes.Type
}

// Compile binds an expression to the environment.
func Compile(e ast.Expr, env *Env) (*Compiled, error) {
	switch t := e.(type) {
	case *ast.Literal:
		v := t.Value
		return &Compiled{
			Eval: func(sqltypes.Row) (sqltypes.Value, error) { return v, nil },
			Type: v.T,
		}, nil

	case *ast.ColumnRef:
		b, err := env.Resolve(t.Table, t.Name)
		if err != nil {
			return nil, err
		}
		idx := b.Index
		return &Compiled{
			Eval: func(row sqltypes.Row) (sqltypes.Value, error) {
				if idx >= len(row) {
					return sqltypes.NullValue, fmt.Errorf("row too short for column %s (index %d)", t.Name, idx)
				}
				return row[idx], nil
			},
			Type: b.Type,
		}, nil

	case *ast.BinaryExpr:
		return compileBinary(t, env)

	case *ast.UnaryExpr:
		inner, err := Compile(t.E, env)
		if err != nil {
			return nil, err
		}
		if t.Op == "NOT" {
			return &Compiled{
				Eval: func(row sqltypes.Row) (sqltypes.Value, error) {
					v, err := inner.Eval(row)
					if err != nil {
						return sqltypes.NullValue, err
					}
					return sqltypes.TriOf(v).Not().Value(), nil
				},
				Type: sqltypes.Bool,
			}, nil
		}
		return &Compiled{
			Eval: func(row sqltypes.Row) (sqltypes.Value, error) {
				v, err := inner.Eval(row)
				if err != nil {
					return sqltypes.NullValue, err
				}
				return sqltypes.Neg(v)
			},
			Type: inner.Type,
		}, nil

	case *ast.FuncCall:
		if ast.IsAggregateName(t.Name) {
			return nil, fmt.Errorf("aggregate %s is not allowed here", t.Name)
		}
		return compileScalarFunc(t, env)

	case *ast.CaseExpr:
		return compileCase(t, env)

	case *ast.CastExpr:
		inner, err := Compile(t.E, env)
		if err != nil {
			return nil, err
		}
		to := t.To
		return &Compiled{
			Eval: func(row sqltypes.Row) (sqltypes.Value, error) {
				v, err := inner.Eval(row)
				if err != nil {
					return sqltypes.NullValue, err
				}
				return sqltypes.Cast(v, to)
			},
			Type: to,
		}, nil

	case *ast.IsNullExpr:
		inner, err := Compile(t.E, env)
		if err != nil {
			return nil, err
		}
		neg := t.Negate
		return &Compiled{
			Eval: func(row sqltypes.Row) (sqltypes.Value, error) {
				v, err := inner.Eval(row)
				if err != nil {
					return sqltypes.NullValue, err
				}
				return sqltypes.NewBool(v.IsNull() != neg), nil
			},
			Type: sqltypes.Bool,
		}, nil

	case *ast.InExpr:
		return compileIn(t, env)

	case *ast.BetweenExpr:
		lo := &ast.BinaryExpr{Op: ">=", L: t.E, R: t.Lo}
		hi := &ast.BinaryExpr{Op: "<=", L: ast.CloneExpr(t.E), R: t.Hi}
		var both ast.Expr = &ast.BinaryExpr{Op: "AND", L: lo, R: hi}
		if t.Negate {
			both = &ast.UnaryExpr{Op: "NOT", E: both}
		}
		return Compile(both, env)

	case *ast.Star:
		return nil, fmt.Errorf("* is only valid in a select list or COUNT(*)")
	}
	return nil, fmt.Errorf("unsupported expression %T", e)
}

func compileBinary(t *ast.BinaryExpr, env *Env) (*Compiled, error) {
	l, err := Compile(t.L, env)
	if err != nil {
		return nil, err
	}
	r, err := Compile(t.R, env)
	if err != nil {
		return nil, err
	}
	op := t.Op
	switch op {
	case "AND", "OR":
		and := op == "AND"
		return &Compiled{
			Eval: func(row sqltypes.Row) (sqltypes.Value, error) {
				lv, err := l.Eval(row)
				if err != nil {
					return sqltypes.NullValue, err
				}
				lt := sqltypes.TriOf(lv)
				// Short-circuit where three-valued logic allows.
				if and && lt == sqltypes.TriFalse {
					return sqltypes.NewBool(false), nil
				}
				if !and && lt == sqltypes.TriTrue {
					return sqltypes.NewBool(true), nil
				}
				rv, err := r.Eval(row)
				if err != nil {
					return sqltypes.NullValue, err
				}
				rt := sqltypes.TriOf(rv)
				if and {
					return lt.And(rt).Value(), nil
				}
				return lt.Or(rt).Value(), nil
			},
			Type: sqltypes.Bool,
		}, nil

	case "=", "!=", "<", "<=", ">", ">=":
		return &Compiled{
			Eval: func(row sqltypes.Row) (sqltypes.Value, error) {
				lv, err := l.Eval(row)
				if err != nil {
					return sqltypes.NullValue, err
				}
				rv, err := r.Eval(row)
				if err != nil {
					return sqltypes.NullValue, err
				}
				if lv.IsNull() || rv.IsNull() {
					return sqltypes.NullValue, nil
				}
				c := sqltypes.Compare(lv, rv)
				var b bool
				switch op {
				case "=":
					b = c == 0
				case "!=":
					b = c != 0
				case "<":
					b = c < 0
				case "<=":
					b = c <= 0
				case ">":
					b = c > 0
				case ">=":
					b = c >= 0
				}
				return sqltypes.NewBool(b), nil
			},
			Type: sqltypes.Bool,
		}, nil

	case "+", "-", "*", "/", "%":
		return &Compiled{
			Eval: func(row sqltypes.Row) (sqltypes.Value, error) {
				lv, err := l.Eval(row)
				if err != nil {
					return sqltypes.NullValue, err
				}
				rv, err := r.Eval(row)
				if err != nil {
					return sqltypes.NullValue, err
				}
				switch op {
				case "+":
					return sqltypes.Add(lv, rv)
				case "-":
					return sqltypes.Sub(lv, rv)
				case "*":
					return sqltypes.Mul(lv, rv)
				case "/":
					return sqltypes.Div(lv, rv)
				default:
					return sqltypes.Mod(lv, rv)
				}
			},
			Type: sqltypes.ResultType(l.Type, r.Type, op),
		}, nil

	case "||":
		return &Compiled{
			Eval: func(row sqltypes.Row) (sqltypes.Value, error) {
				lv, err := l.Eval(row)
				if err != nil {
					return sqltypes.NullValue, err
				}
				rv, err := r.Eval(row)
				if err != nil {
					return sqltypes.NullValue, err
				}
				return sqltypes.Concat(lv, rv)
			},
			Type: sqltypes.String,
		}, nil

	case "LIKE":
		return &Compiled{
			Eval: func(row sqltypes.Row) (sqltypes.Value, error) {
				lv, err := l.Eval(row)
				if err != nil {
					return sqltypes.NullValue, err
				}
				rv, err := r.Eval(row)
				if err != nil {
					return sqltypes.NullValue, err
				}
				if lv.IsNull() || rv.IsNull() {
					return sqltypes.NullValue, nil
				}
				return sqltypes.NewBool(likeMatch(lv.String(), rv.String())), nil
			},
			Type: sqltypes.Bool,
		}, nil
	}
	return nil, fmt.Errorf("unsupported binary operator %q", op)
}

func compileCase(t *ast.CaseExpr, env *Env) (*Compiled, error) {
	type arm struct {
		cond, res *Compiled
	}
	arms := make([]arm, len(t.Whens))
	resultType := sqltypes.Unknown
	for i, w := range t.Whens {
		c, err := Compile(w.Cond, env)
		if err != nil {
			return nil, err
		}
		r, err := Compile(w.Result, env)
		if err != nil {
			return nil, err
		}
		arms[i] = arm{c, r}
		resultType = mergeTypes(resultType, r.Type)
	}
	var els *Compiled
	if t.Else != nil {
		var err error
		els, err = Compile(t.Else, env)
		if err != nil {
			return nil, err
		}
		resultType = mergeTypes(resultType, els.Type)
	}
	return &Compiled{
		Eval: func(row sqltypes.Row) (sqltypes.Value, error) {
			for _, a := range arms {
				cv, err := a.cond.Eval(row)
				if err != nil {
					return sqltypes.NullValue, err
				}
				if sqltypes.TriOf(cv) == sqltypes.TriTrue {
					return a.res.Eval(row)
				}
			}
			if els != nil {
				return els.Eval(row)
			}
			return sqltypes.NullValue, nil
		},
		Type: resultType,
	}, nil
}

func compileIn(t *ast.InExpr, env *Env) (*Compiled, error) {
	e, err := Compile(t.E, env)
	if err != nil {
		return nil, err
	}
	items := make([]*Compiled, len(t.List))
	for i, x := range t.List {
		c, err := Compile(x, env)
		if err != nil {
			return nil, err
		}
		items[i] = c
	}
	neg := t.Negate
	return &Compiled{
		Eval: func(row sqltypes.Row) (sqltypes.Value, error) {
			v, err := e.Eval(row)
			if err != nil {
				return sqltypes.NullValue, err
			}
			if v.IsNull() {
				return sqltypes.NullValue, nil
			}
			sawNull := false
			for _, it := range items {
				iv, err := it.Eval(row)
				if err != nil {
					return sqltypes.NullValue, err
				}
				if iv.IsNull() {
					sawNull = true
					continue
				}
				if sqltypes.Compare(v, iv) == 0 {
					return sqltypes.NewBool(!neg), nil
				}
			}
			if sawNull {
				// x IN (..., NULL) with no match is UNKNOWN.
				return sqltypes.NullValue, nil
			}
			return sqltypes.NewBool(neg), nil
		},
		Type: sqltypes.Bool,
	}, nil
}

// mergeTypes merges branch result types for CASE/COALESCE-style typing.
func mergeTypes(a, b sqltypes.Type) sqltypes.Type {
	switch {
	case a == sqltypes.Unknown || a == sqltypes.Null:
		return b
	case b == sqltypes.Unknown || b == sqltypes.Null:
		return a
	case a == b:
		return a
	case (a == sqltypes.Int && b == sqltypes.Float) || (a == sqltypes.Float && b == sqltypes.Int):
		return sqltypes.Float
	default:
		return a
	}
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single
// char), case-sensitive, without regexp.
func likeMatch(s, pattern string) bool {
	// Classic two-pointer wildcard matching.
	si, pi := 0, 0
	star, match := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			match = si
			pi++
		case star >= 0:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// InferType computes the static type of an expression without building
// an evaluator (used by the planner for schema inference where
// aggregates have already been replaced by column refs).
func InferType(e ast.Expr, env *Env) sqltypes.Type {
	c, err := Compile(e, env)
	if err != nil {
		return sqltypes.Unknown
	}
	return c.Type
}
