package expr

import (
	"testing"

	"dbspinner/internal/sqltypes"
)

func feed(t *testing.T, a Aggregator, vals ...sqltypes.Value) sqltypes.Value {
	t.Helper()
	for _, v := range vals {
		if err := a.Add(v); err != nil {
			t.Fatalf("Add(%v): %v", v, err)
		}
	}
	return a.Result()
}

func mustAgg(t *testing.T, name string, star, distinct bool) Aggregator {
	t.Helper()
	a, err := NewAggregator(name, star, distinct)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestCount(t *testing.T) {
	a := mustAgg(t, "COUNT", false, false)
	got := feed(t, a, sqltypes.NewInt(1), sqltypes.NullValue, sqltypes.NewInt(2))
	if got != sqltypes.NewInt(2) {
		t.Errorf("COUNT ignoring NULL = %v", got)
	}
	star := mustAgg(t, "COUNT", true, false)
	got = feed(t, star, sqltypes.NewInt(1), sqltypes.NullValue, sqltypes.NewInt(2))
	if got != sqltypes.NewInt(3) {
		t.Errorf("COUNT(*) = %v", got)
	}
	empty := mustAgg(t, "COUNT", false, false)
	if empty.Result() != sqltypes.NewInt(0) {
		t.Error("empty COUNT should be 0")
	}
}

func TestSum(t *testing.T) {
	a := mustAgg(t, "SUM", false, false)
	got := feed(t, a, sqltypes.NewInt(1), sqltypes.NewInt(2), sqltypes.NullValue)
	if got != sqltypes.NewInt(3) {
		t.Errorf("int SUM = %v", got)
	}
	f := mustAgg(t, "SUM", false, false)
	got = feed(t, f, sqltypes.NewInt(1), sqltypes.NewFloat(0.5))
	if got != sqltypes.NewFloat(1.5) {
		t.Errorf("mixed SUM = %v (int then float must promote)", got)
	}
	f2 := mustAgg(t, "SUM", false, false)
	got = feed(t, f2, sqltypes.NewFloat(0.5), sqltypes.NewInt(1))
	if got != sqltypes.NewFloat(1.5) {
		t.Errorf("mixed SUM (float first) = %v", got)
	}
	empty := mustAgg(t, "SUM", false, false)
	if !empty.Result().IsNull() {
		t.Error("empty SUM should be NULL")
	}
	onlyNulls := mustAgg(t, "SUM", false, false)
	if !feed(t, onlyNulls, sqltypes.NullValue, sqltypes.NullValue).IsNull() {
		t.Error("all-NULL SUM should be NULL")
	}
	bad := mustAgg(t, "SUM", false, false)
	if err := bad.Add(sqltypes.NewString("x")); err == nil {
		t.Error("SUM of string should error")
	}
}

func TestMinMax(t *testing.T) {
	mn := mustAgg(t, "MIN", false, false)
	got := feed(t, mn, sqltypes.NewInt(3), sqltypes.NullValue, sqltypes.NewInt(1), sqltypes.NewInt(2))
	if got != sqltypes.NewInt(1) {
		t.Errorf("MIN = %v", got)
	}
	mx := mustAgg(t, "MAX", false, false)
	got = feed(t, mx, sqltypes.NewFloat(1.5), sqltypes.NewInt(3))
	if got != sqltypes.NewInt(3) {
		t.Errorf("MAX = %v", got)
	}
	empty := mustAgg(t, "MIN", false, false)
	if !empty.Result().IsNull() {
		t.Error("empty MIN should be NULL")
	}
	// Strings compare lexically.
	s := mustAgg(t, "MIN", false, false)
	got = feed(t, s, sqltypes.NewString("b"), sqltypes.NewString("a"))
	if got != sqltypes.NewString("a") {
		t.Errorf("string MIN = %v", got)
	}
}

func TestAvg(t *testing.T) {
	a := mustAgg(t, "AVG", false, false)
	got := feed(t, a, sqltypes.NewInt(1), sqltypes.NewInt(2), sqltypes.NullValue)
	if got != sqltypes.NewFloat(1.5) {
		t.Errorf("AVG = %v", got)
	}
	empty := mustAgg(t, "AVG", false, false)
	if !empty.Result().IsNull() {
		t.Error("empty AVG should be NULL")
	}
	bad := mustAgg(t, "AVG", false, false)
	if err := bad.Add(sqltypes.NewBool(true)); err == nil {
		t.Error("AVG of bool should error")
	}
}

func TestDistinct(t *testing.T) {
	a := mustAgg(t, "SUM", false, true)
	got := feed(t, a, sqltypes.NewInt(1), sqltypes.NewInt(1), sqltypes.NewInt(2), sqltypes.NewFloat(2))
	if got != sqltypes.NewInt(3) {
		t.Errorf("SUM(DISTINCT) = %v (1 and 1, 2 and 2.0 must dedup)", got)
	}
	c := mustAgg(t, "COUNT", false, true)
	got = feed(t, c, sqltypes.NewInt(1), sqltypes.NewInt(1), sqltypes.NullValue, sqltypes.NewInt(2))
	if got != sqltypes.NewInt(2) {
		t.Errorf("COUNT(DISTINCT) = %v", got)
	}
}

func TestNewAggregatorErrors(t *testing.T) {
	if _, err := NewAggregator("MEDIAN", false, false); err == nil {
		t.Error("unknown aggregate should fail")
	}
	if !IsAggregate("sum") || !IsAggregate("Count") || IsAggregate("LEAST") {
		t.Error("IsAggregate misclassifies")
	}
}

func TestAggregateResultType(t *testing.T) {
	cases := []struct {
		name string
		in   sqltypes.Type
		want sqltypes.Type
	}{
		{"COUNT", sqltypes.String, sqltypes.Int},
		{"AVG", sqltypes.Int, sqltypes.Float},
		{"SUM", sqltypes.Int, sqltypes.Int},
		{"SUM", sqltypes.Float, sqltypes.Float},
		{"MIN", sqltypes.String, sqltypes.String},
		{"MAX", sqltypes.Float, sqltypes.Float},
	}
	for _, c := range cases {
		if got := AggregateResultType(c.name, c.in); got != c.want {
			t.Errorf("AggregateResultType(%s, %v) = %v, want %v", c.name, c.in, got, c.want)
		}
	}
}
