package expr

import (
	"fmt"
	"strings"

	"dbspinner/internal/sqltypes"
)

// Aggregator accumulates input values for one group and produces the
// aggregate result. Implementations follow SQL semantics: NULL inputs
// are ignored (except COUNT(*)), and an empty group yields NULL for
// SUM/MIN/MAX/AVG and 0 for COUNT.
type Aggregator interface {
	Add(v sqltypes.Value) error
	Result() sqltypes.Value
}

// NewAggregator constructs an accumulator for the named aggregate.
// star marks COUNT(*); distinct wraps the accumulator with
// duplicate elimination.
func NewAggregator(name string, star, distinct bool) (Aggregator, error) {
	var a Aggregator
	switch strings.ToUpper(name) {
	case "COUNT":
		a = &countAgg{star: star}
	case "SUM":
		a = &sumAgg{}
	case "MIN":
		a = &extremumAgg{dir: -1}
	case "MAX":
		a = &extremumAgg{dir: 1}
	case "AVG":
		a = &avgAgg{}
	default:
		return nil, fmt.Errorf("unknown aggregate %s", name)
	}
	if distinct {
		a = &distinctAgg{inner: a, seen: make(map[sqltypes.Key]bool)}
	}
	return a, nil
}

// IsAggregate reports whether name is a supported aggregate function.
func IsAggregate(name string) bool {
	switch strings.ToUpper(name) {
	case "COUNT", "SUM", "MIN", "MAX", "AVG":
		return true
	}
	return false
}

// AggregateResultType returns the static result type of the aggregate
// applied to an input of type in.
func AggregateResultType(name string, in sqltypes.Type) sqltypes.Type {
	switch strings.ToUpper(name) {
	case "COUNT":
		return sqltypes.Int
	case "AVG":
		return sqltypes.Float
	case "SUM":
		if in == sqltypes.Int {
			return sqltypes.Int
		}
		return sqltypes.Float
	default: // MIN, MAX
		return in
	}
}

type countAgg struct {
	star bool
	n    int64
}

func (c *countAgg) Add(v sqltypes.Value) error {
	if c.star || !v.IsNull() {
		c.n++
	}
	return nil
}

func (c *countAgg) Result() sqltypes.Value { return sqltypes.NewInt(c.n) }

type sumAgg struct {
	any     bool
	isFloat bool
	i       int64
	f       float64
}

func (s *sumAgg) Add(v sqltypes.Value) error {
	if v.IsNull() {
		return nil
	}
	switch v.T {
	case sqltypes.Int:
		if s.isFloat {
			s.f += float64(v.I)
		} else {
			s.i += v.I
		}
	case sqltypes.Float:
		if !s.isFloat {
			s.f = float64(s.i)
			s.isFloat = true
		}
		s.f += v.F
	default:
		return fmt.Errorf("SUM requires numeric input, got %s", v.T)
	}
	s.any = true
	return nil
}

func (s *sumAgg) Result() sqltypes.Value {
	if !s.any {
		return sqltypes.NullValue
	}
	if s.isFloat {
		return sqltypes.NewFloat(s.f)
	}
	return sqltypes.NewInt(s.i)
}

type extremumAgg struct {
	dir  int
	best sqltypes.Value // starts NULL
}

func (e *extremumAgg) Add(v sqltypes.Value) error {
	if v.IsNull() {
		return nil
	}
	if e.best.IsNull() || sqltypes.Compare(v, e.best)*e.dir > 0 {
		e.best = v
	}
	return nil
}

func (e *extremumAgg) Result() sqltypes.Value { return e.best }

type avgAgg struct {
	n   int64
	sum float64
}

func (a *avgAgg) Add(v sqltypes.Value) error {
	if v.IsNull() {
		return nil
	}
	if v.T != sqltypes.Int && v.T != sqltypes.Float {
		return fmt.Errorf("AVG requires numeric input, got %s", v.T)
	}
	a.sum += v.Float()
	a.n++
	return nil
}

func (a *avgAgg) Result() sqltypes.Value {
	if a.n == 0 {
		return sqltypes.NullValue
	}
	return sqltypes.NewFloat(a.sum / float64(a.n))
}

type distinctAgg struct {
	inner Aggregator
	seen  map[sqltypes.Key]bool
}

func (d *distinctAgg) Add(v sqltypes.Value) error {
	if v.IsNull() {
		// NULLs are ignored by the wrapped aggregates anyway.
		return nil
	}
	k := v.Key()
	if d.seen[k] {
		return nil
	}
	d.seen[k] = true
	return d.inner.Add(v)
}

func (d *distinctAgg) Result() sqltypes.Value { return d.inner.Result() }
