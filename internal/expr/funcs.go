package expr

import (
	"fmt"
	"math"
	"strings"

	"dbspinner/internal/ast"
	"dbspinner/internal/sqltypes"
)

// scalarFunc evaluates a scalar function over already-evaluated
// arguments.
type scalarFunc struct {
	minArgs, maxArgs int // maxArgs < 0 means variadic
	resultType       func(args []sqltypes.Type) sqltypes.Type
	eval             func(args []sqltypes.Value) (sqltypes.Value, error)
}

func fixedType(t sqltypes.Type) func([]sqltypes.Type) sqltypes.Type {
	return func([]sqltypes.Type) sqltypes.Type { return t }
}

func firstArgType(args []sqltypes.Type) sqltypes.Type {
	if len(args) == 0 {
		return sqltypes.Unknown
	}
	return args[0]
}

func mergedType(args []sqltypes.Type) sqltypes.Type {
	t := sqltypes.Unknown
	for _, a := range args {
		t = mergeTypes(t, a)
	}
	return t
}

// numeric1 wraps a float function as a NULL-propagating unary scalar.
func numeric1(f func(float64) float64, rt sqltypes.Type) func([]sqltypes.Value) (sqltypes.Value, error) {
	return func(args []sqltypes.Value) (sqltypes.Value, error) {
		v := args[0]
		if v.IsNull() {
			return sqltypes.NullValue, nil
		}
		if v.T != sqltypes.Int && v.T != sqltypes.Float {
			return sqltypes.NullValue, fmt.Errorf("numeric argument required, got %s", v.T)
		}
		r := f(v.Float())
		if rt == sqltypes.Int {
			return sqltypes.NewInt(int64(r)), nil
		}
		return sqltypes.NewFloat(r), nil
	}
}

var scalarFuncs = map[string]scalarFunc{
	"ABS": {1, 1, firstArgType, func(a []sqltypes.Value) (sqltypes.Value, error) {
		v := a[0]
		if v.IsNull() {
			return sqltypes.NullValue, nil
		}
		switch v.T {
		case sqltypes.Int:
			if v.I < 0 {
				return sqltypes.NewInt(-v.I), nil
			}
			return v, nil
		case sqltypes.Float:
			return sqltypes.NewFloat(math.Abs(v.F)), nil
		}
		return sqltypes.NullValue, fmt.Errorf("ABS requires a numeric argument")
	}},
	"CEILING": {1, 1, fixedType(sqltypes.Float), numeric1(math.Ceil, sqltypes.Float)},
	"CEIL":    {1, 1, fixedType(sqltypes.Float), numeric1(math.Ceil, sqltypes.Float)},
	"FLOOR":   {1, 1, fixedType(sqltypes.Float), numeric1(math.Floor, sqltypes.Float)},
	"SQRT":    {1, 1, fixedType(sqltypes.Float), numeric1(math.Sqrt, sqltypes.Float)},
	"EXP":     {1, 1, fixedType(sqltypes.Float), numeric1(math.Exp, sqltypes.Float)},
	"LN":      {1, 1, fixedType(sqltypes.Float), numeric1(math.Log, sqltypes.Float)},
	"SIGN": {1, 1, fixedType(sqltypes.Int), numeric1(func(f float64) float64 {
		switch {
		case f > 0:
			return 1
		case f < 0:
			return -1
		}
		return 0
	}, sqltypes.Int)},
	"ROUND": {1, 2, firstArgType, func(a []sqltypes.Value) (sqltypes.Value, error) {
		v := a[0]
		if v.IsNull() {
			return sqltypes.NullValue, nil
		}
		if v.T != sqltypes.Int && v.T != sqltypes.Float {
			return sqltypes.NullValue, fmt.Errorf("ROUND requires a numeric argument")
		}
		digits := int64(0)
		if len(a) == 2 {
			if a[1].IsNull() {
				return sqltypes.NullValue, nil
			}
			d, err := sqltypes.Cast(a[1], sqltypes.Int)
			if err != nil {
				return sqltypes.NullValue, err
			}
			digits = d.I
		}
		scale := math.Pow(10, float64(digits))
		r := math.Round(v.Float()*scale) / scale
		if v.T == sqltypes.Int && digits >= 0 {
			return sqltypes.NewInt(int64(r)), nil
		}
		return sqltypes.NewFloat(r), nil
	}},
	"MOD": {2, 2, mergedType, func(a []sqltypes.Value) (sqltypes.Value, error) {
		return sqltypes.Mod(a[0], a[1])
	}},
	"POWER": {2, 2, fixedType(sqltypes.Float), func(a []sqltypes.Value) (sqltypes.Value, error) {
		if a[0].IsNull() || a[1].IsNull() {
			return sqltypes.NullValue, nil
		}
		return sqltypes.NewFloat(math.Pow(a[0].Float(), a[1].Float())), nil
	}},
	"LEAST": {1, -1, mergedType, func(a []sqltypes.Value) (sqltypes.Value, error) {
		return extremum(a, -1), nil
	}},
	"GREATEST": {1, -1, mergedType, func(a []sqltypes.Value) (sqltypes.Value, error) {
		return extremum(a, 1), nil
	}},
	"COALESCE": {1, -1, mergedType, func(a []sqltypes.Value) (sqltypes.Value, error) {
		for _, v := range a {
			if !v.IsNull() {
				return v, nil
			}
		}
		return sqltypes.NullValue, nil
	}},
	"NULLIF": {2, 2, firstArgType, func(a []sqltypes.Value) (sqltypes.Value, error) {
		if eq, ok := sqltypes.Equal(a[0], a[1]); ok && eq {
			return sqltypes.NullValue, nil
		}
		return a[0], nil
	}},
	"UPPER": {1, 1, fixedType(sqltypes.String), func(a []sqltypes.Value) (sqltypes.Value, error) {
		if a[0].IsNull() {
			return sqltypes.NullValue, nil
		}
		return sqltypes.NewString(strings.ToUpper(a[0].String())), nil
	}},
	"LOWER": {1, 1, fixedType(sqltypes.String), func(a []sqltypes.Value) (sqltypes.Value, error) {
		if a[0].IsNull() {
			return sqltypes.NullValue, nil
		}
		return sqltypes.NewString(strings.ToLower(a[0].String())), nil
	}},
	"LENGTH": {1, 1, fixedType(sqltypes.Int), func(a []sqltypes.Value) (sqltypes.Value, error) {
		if a[0].IsNull() {
			return sqltypes.NullValue, nil
		}
		return sqltypes.NewInt(int64(len(a[0].String()))), nil
	}},
	"SUBSTR": {2, 3, fixedType(sqltypes.String), func(a []sqltypes.Value) (sqltypes.Value, error) {
		if a[0].IsNull() || a[1].IsNull() {
			return sqltypes.NullValue, nil
		}
		s := a[0].String()
		start, err := sqltypes.Cast(a[1], sqltypes.Int)
		if err != nil {
			return sqltypes.NullValue, err
		}
		// SQL SUBSTR is 1-based.
		i := int(start.I) - 1
		if i < 0 {
			i = 0
		}
		if i > len(s) {
			i = len(s)
		}
		end := len(s)
		if len(a) == 3 {
			if a[2].IsNull() {
				return sqltypes.NullValue, nil
			}
			n, err := sqltypes.Cast(a[2], sqltypes.Int)
			if err != nil {
				return sqltypes.NullValue, err
			}
			if n.I < 0 {
				return sqltypes.NullValue, fmt.Errorf("negative SUBSTR length")
			}
			if i+int(n.I) < end {
				end = i + int(n.I)
			}
		}
		return sqltypes.NewString(s[i:end]), nil
	}},
	"CONCAT": {1, -1, fixedType(sqltypes.String), func(a []sqltypes.Value) (sqltypes.Value, error) {
		var b strings.Builder
		for _, v := range a {
			if v.IsNull() {
				continue // CONCAT skips NULLs (PostgreSQL behaviour)
			}
			b.WriteString(v.String())
		}
		return sqltypes.NewString(b.String()), nil
	}},
}

// extremum returns the least (dir < 0) or greatest (dir > 0) non-NULL
// value; NULL if all arguments are NULL.
func extremum(args []sqltypes.Value, dir int) sqltypes.Value {
	best := sqltypes.NullValue
	for _, v := range args {
		if v.IsNull() {
			continue
		}
		if best.IsNull() || sqltypes.Compare(v, best)*dir > 0 {
			best = v
		}
	}
	return best
}

// IsScalarFunc reports whether the (uppercased) name is a known scalar
// function.
func IsScalarFunc(name string) bool {
	_, ok := scalarFuncs[strings.ToUpper(name)]
	return ok
}

func compileScalarFunc(t *ast.FuncCall, env *Env) (*Compiled, error) {
	f, ok := scalarFuncs[t.Name]
	if !ok {
		return nil, fmt.Errorf("unknown function %s", t.Name)
	}
	if t.Star {
		return nil, fmt.Errorf("%s(*) is not valid", t.Name)
	}
	if len(t.Args) < f.minArgs || (f.maxArgs >= 0 && len(t.Args) > f.maxArgs) {
		return nil, fmt.Errorf("%s: wrong number of arguments (%d)", t.Name, len(t.Args))
	}
	compiled := make([]*Compiled, len(t.Args))
	types := make([]sqltypes.Type, len(t.Args))
	for i, a := range t.Args {
		c, err := Compile(a, env)
		if err != nil {
			return nil, err
		}
		compiled[i] = c
		types[i] = c.Type
	}
	eval := f.eval
	return &Compiled{
		Eval: func(row sqltypes.Row) (sqltypes.Value, error) {
			args := make([]sqltypes.Value, len(compiled))
			for i, c := range compiled {
				v, err := c.Eval(row)
				if err != nil {
					return sqltypes.NullValue, err
				}
				args[i] = v
			}
			return eval(args)
		},
		Type: f.resultType(types),
	}, nil
}
