package middleware

import (
	"math"
	"testing"

	"dbspinner"
	"dbspinner/internal/proc"
	"dbspinner/internal/workload"
)

func newEngine(t *testing.T) *dbspinner.Engine {
	t.Helper()
	e := dbspinner.New(dbspinner.Config{Partitions: 2})
	if _, err := e.Exec("CREATE TABLE edges (src int, dst int, weight float)"); err != nil {
		t.Fatal(err)
	}
	g := workload.PreferentialAttachment(100, 3, workload.WeightOutDegree, 9)
	if err := e.BulkInsert("edges", workload.EdgeRows(g)); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestMiddlewareMatchesCTE(t *testing.T) {
	e := newEngine(t)
	c := NewClient(e)
	mwRes, err := c.RunIterative(proc.PageRank(3, false))
	if err != nil {
		t.Fatal(err)
	}
	cteRes, err := e.Query(`WITH ITERATIVE PageRank (Node, Rank, Delta)
AS ( SELECT src, 0, 0.15
     FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
 ITERATE
  SELECT PageRank.node, PageRank.rank + PageRank.delta,
    0.85 * SUM(IncomingRank.delta * IncomingEdges.Weight)
  FROM PageRank
    LEFT JOIN edges AS IncomingEdges ON PageRank.node = IncomingEdges.dst
    LEFT JOIN PageRank AS IncomingRank ON IncomingRank.node = IncomingEdges.src
  GROUP BY PageRank.node, PageRank.rank + PageRank.delta
 UNTIL 3 ITERATIONS )
SELECT Node, Rank FROM PageRank ORDER BY Node`)
	if err != nil {
		t.Fatal(err)
	}
	if len(mwRes.Rows) != len(cteRes.Rows) {
		t.Fatalf("row counts: %d vs %d", len(mwRes.Rows), len(cteRes.Rows))
	}
	for i := range mwRes.Rows {
		a, b := mwRes.Rows[i], cteRes.Rows[i]
		if a[0].Int() != b[0].Int() {
			t.Fatalf("row %d node %v vs %v", i, a[0], b[0])
		}
		if a[1].IsNull() != b[1].IsNull() {
			t.Fatalf("row %d null mismatch", i)
		}
		if !a[1].IsNull() && math.Abs(a[1].Float()-b[1].Float()) > 1e-9*(1+math.Abs(b[1].Float())) {
			t.Errorf("row %d: %v vs %v", i, a[1], b[1])
		}
	}
}

func TestMiddlewareAccounting(t *testing.T) {
	e := newEngine(t)
	c := NewClient(e)
	p := proc.Forecast(4, 2)
	if _, err := c.RunIterative(p); err != nil {
		t.Fatal(err)
	}
	// 2 setup + 1 init + 3*4 body + 1 final + 2 teardown = 18 round trips.
	if c.RoundTrips != 18 {
		t.Errorf("round trips = %d, want 18", c.RoundTrips)
	}
	if c.BytesOnWire == 0 {
		t.Error("wire bytes should be counted")
	}
}

func TestMiddlewareTeardownOnError(t *testing.T) {
	e := newEngine(t)
	c := NewClient(e)
	p := proc.PageRank(1, false)
	p.Body = append(p.Body, "SELECT nope FROM nowhere")
	if _, err := c.RunIterative(p); err == nil {
		t.Fatal("broken body should fail")
	}
	if _, err := c.RunIterative(proc.PageRank(1, false)); err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
}

func TestMiddlewarePaysMoreStatements(t *testing.T) {
	e := newEngine(t)
	e.ResetStats()
	c := NewClient(e)
	if _, err := c.RunIterative(proc.Forecast(3, 2)); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Statements == 0 || st.WALRecords == 0 {
		t.Errorf("middleware path should show DDL/DML overhead: %+v", st)
	}
}
