// Package middleware implements the external (SQLoop-style) baseline
// discussed in §I/§II: a client outside the engine that provides
// iterative-CTE semantics by driving the database purely through SQL
// text — creating temporary tables, issuing INSERT/SELECT/UPDATE/
// DELETE statements in a loop, and dropping the tables afterwards
// (Figure 1).
//
// On top of the per-statement costs the stored-procedure baseline
// pays, the middleware client also pays a client/server round trip for
// every statement: the statement text and the full result set are
// serialized through a wire buffer, which is what a driver over a
// socket would do. No artificial sleeps are added; the overhead is the
// real serialization work.
package middleware

import (
	"fmt"
	"strings"

	"dbspinner"
	"dbspinner/internal/proc"
)

// Client drives an engine through its SQL interface only.
type Client struct {
	engine *dbspinner.Engine
	// wire is the serialization buffer standing in for the socket.
	wire []byte
	// RoundTrips counts statements sent.
	RoundTrips int64
	// BytesOnWire counts serialized request+response bytes.
	BytesOnWire int64
}

// NewClient wraps an engine.
func NewClient(e *dbspinner.Engine) *Client { return &Client{engine: e} }

// exec sends one non-query statement over the "wire".
func (c *Client) exec(sql string) error {
	c.send(sql)
	n, err := c.engine.Exec(sql)
	if err != nil {
		return err
	}
	c.receive(fmt.Sprintf("OK %d", n))
	return nil
}

// query sends a SELECT and serializes the full result back.
func (c *Client) query(sql string) (*dbspinner.Result, error) {
	c.send(sql)
	r, err := c.engine.Query(sql)
	if err != nil {
		return nil, err
	}
	// Serialize every row, as a text-protocol driver would.
	var b strings.Builder
	b.WriteString(strings.Join(r.Columns, "\t"))
	for _, row := range r.Rows {
		b.WriteByte('\n')
		b.WriteString(row.String())
	}
	c.receive(b.String())
	return r, nil
}

func (c *Client) send(payload string) {
	c.wire = append(c.wire[:0], payload...)
	c.RoundTrips++
	c.BytesOnWire += int64(len(payload))
}

func (c *Client) receive(payload string) {
	c.wire = append(c.wire[:0], payload...)
	c.BytesOnWire += int64(len(payload))
}

// RunIterative executes a procedural iterative computation through the
// wire. It reuses the statement sequences of the stored-procedure
// baseline (they are exactly the Figure 1 statements) but issues each
// from outside the engine.
func (c *Client) RunIterative(p *proc.Procedure) (res *dbspinner.Result, err error) {
	defer func() {
		for _, s := range p.Teardown {
			if terr := c.exec(s); terr != nil && err == nil {
				err = fmt.Errorf("teardown: %w", terr)
			}
		}
	}()
	for _, s := range p.Setup {
		if err := c.exec(s); err != nil {
			return nil, fmt.Errorf("setup: %w", err)
		}
	}
	for _, s := range p.Init {
		if err := c.exec(s); err != nil {
			return nil, fmt.Errorf("init: %w", err)
		}
	}
	for i := 0; i < p.Iterations; i++ {
		for _, s := range p.Body {
			if err := c.exec(s); err != nil {
				return nil, fmt.Errorf("iteration %d: %w", i+1, err)
			}
		}
	}
	r, err := c.query(p.Final)
	if err != nil {
		return nil, fmt.Errorf("final query: %w", err)
	}
	return r, nil
}
