// Package txn provides the transactional machinery that ordinary DML
// statements pay for and single-plan iterative CTEs avoid (paper §I,
// §II): a table-level lock manager, a write-ahead log with binary row
// encoding, and per-statement autocommit transactions.
//
// The overhead is real, not simulated with sleeps: every logged row is
// encoded into the WAL buffer, and every statement acquires and
// releases locks and writes begin/commit records. This is what makes
// the stored-procedure and middleware baselines of Figure 11 pay the
// costs the paper describes.
package txn

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"dbspinner/internal/sqltypes"
)

// LockMode is shared (reads) or exclusive (writes).
type LockMode uint8

// Lock modes.
const (
	Shared LockMode = iota
	Exclusive
)

// LockManager implements table-level two-phase locking. The engine
// serializes statements, so locks never block in practice, but the
// bookkeeping cost per statement is the point.
type LockManager struct {
	mu    sync.Mutex
	cond  *sync.Cond
	locks map[string]*lockState
	// Acquired counts successful lock acquisitions (for stats).
	Acquired int64
}

type lockState struct {
	sharedBy  map[int64]int
	exclusive int64 // txn id holding exclusive, 0 if none
}

// NewLockManager returns an empty lock manager.
func NewLockManager() *LockManager {
	lm := &LockManager{locks: make(map[string]*lockState)}
	lm.cond = sync.NewCond(&lm.mu)
	return lm
}

// Lock acquires a table lock for a transaction, blocking until
// compatible.
func (lm *LockManager) Lock(txnID int64, table string, mode LockMode) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for {
		st := lm.locks[table]
		if st == nil {
			st = &lockState{sharedBy: make(map[int64]int)}
			lm.locks[table] = st
		}
		if lm.compatible(st, txnID, mode) {
			if mode == Exclusive {
				st.exclusive = txnID
			} else {
				st.sharedBy[txnID]++
			}
			lm.Acquired++
			return
		}
		lm.cond.Wait()
	}
}

func (lm *LockManager) compatible(st *lockState, txnID int64, mode LockMode) bool {
	if st.exclusive != 0 && st.exclusive != txnID {
		return false
	}
	if mode == Exclusive {
		if st.exclusive == txnID {
			return true
		}
		// Upgrade allowed only if we are the sole shared holder.
		for id := range st.sharedBy {
			if id != txnID {
				return false
			}
		}
		return true
	}
	return true
}

// UnlockAll releases every lock a transaction holds.
func (lm *LockManager) UnlockAll(txnID int64) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for name, st := range lm.locks {
		if st.exclusive == txnID {
			st.exclusive = 0
		}
		delete(st.sharedBy, txnID)
		if st.exclusive == 0 && len(st.sharedBy) == 0 {
			delete(lm.locks, name)
		}
	}
	lm.cond.Broadcast()
}

// WAL is an in-memory write-ahead log. Records are length-prefixed
// binary encodings: the encoding cost is the honest part of the DML
// overhead.
type WAL struct {
	mu  sync.Mutex
	buf []byte
	// Records counts appended records; Bytes is the log size.
	Records int64
}

// Record kinds.
const (
	RecBegin byte = iota + 1
	RecCommit
	RecAbort
	RecInsert
	RecUpdate
	RecDelete
	RecDDL
)

// NewWAL returns an empty log.
func NewWAL() *WAL { return &WAL{} }

// Bytes returns the current log size.
func (w *WAL) Bytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return int64(len(w.buf))
}

// Reset truncates the log (checkpoint).
func (w *WAL) Reset() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = w.buf[:0]
	w.Records = 0
}

// Append writes one record: kind, txn id, table, and zero or more row
// images.
func (w *WAL) Append(kind byte, txnID int64, table string, rows ...sqltypes.Row) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = append(w.buf, kind)
	w.buf = binary.AppendVarint(w.buf, txnID)
	w.buf = binary.AppendUvarint(w.buf, uint64(len(table)))
	w.buf = append(w.buf, table...)
	w.buf = binary.AppendUvarint(w.buf, uint64(len(rows)))
	for _, r := range rows {
		w.buf = appendRow(w.buf, r)
	}
	w.Records++
}

func appendRow(buf []byte, r sqltypes.Row) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(r)))
	for _, v := range r {
		buf = append(buf, byte(v.T))
		switch v.T {
		case sqltypes.Int, sqltypes.Bool:
			buf = binary.AppendVarint(buf, v.I)
		case sqltypes.Float:
			buf = binary.AppendUvarint(buf, math.Float64bits(v.F))
		case sqltypes.String:
			buf = binary.AppendUvarint(buf, uint64(len(v.S)))
			buf = append(buf, v.S...)
		}
	}
	return buf
}

// Manager hands out transactions and owns the lock manager and WAL.
type Manager struct {
	mu     sync.Mutex
	nextID int64
	Locks  *LockManager
	Log    *WAL
	// Committed counts committed transactions.
	Committed int64
}

// NewManager returns a fresh transaction manager.
func NewManager() *Manager {
	return &Manager{nextID: 1, Locks: NewLockManager(), Log: NewWAL()}
}

// Txn is one transaction. The engine uses autocommit: one per
// statement.
type Txn struct {
	ID  int64
	mgr *Manager
	// done guards against double-commit.
	done bool
}

// Begin starts a transaction and logs the begin record.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	id := m.nextID
	m.nextID++
	m.mu.Unlock()
	m.Log.Append(RecBegin, id, "")
	return &Txn{ID: id, mgr: m}
}

// Lock acquires a table lock for this transaction.
func (t *Txn) Lock(table string, mode LockMode) {
	t.mgr.Locks.Lock(t.ID, table, mode)
}

// LogInsert records inserted rows.
func (t *Txn) LogInsert(table string, rows ...sqltypes.Row) {
	t.mgr.Log.Append(RecInsert, t.ID, table, rows...)
}

// LogUpdate records an update as (old, new) row pairs.
func (t *Txn) LogUpdate(table string, old, new sqltypes.Row) {
	t.mgr.Log.Append(RecUpdate, t.ID, table, old, new)
}

// LogDelete records deleted rows.
func (t *Txn) LogDelete(table string, rows ...sqltypes.Row) {
	t.mgr.Log.Append(RecDelete, t.ID, table, rows...)
}

// LogDDL records a DDL statement.
func (t *Txn) LogDDL(table string) {
	t.mgr.Log.Append(RecDDL, t.ID, table)
}

// Commit logs the commit record and releases locks.
func (t *Txn) Commit() error {
	if t.done {
		return fmt.Errorf("transaction %d already finished", t.ID)
	}
	t.done = true
	t.mgr.Log.Append(RecCommit, t.ID, "")
	t.mgr.Locks.UnlockAll(t.ID)
	t.mgr.mu.Lock()
	t.mgr.Committed++
	t.mgr.mu.Unlock()
	return nil
}

// Abort logs the abort record and releases locks.
func (t *Txn) Abort() {
	if t.done {
		return
	}
	t.done = true
	t.mgr.Log.Append(RecAbort, t.ID, "")
	t.mgr.Locks.UnlockAll(t.ID)
}
