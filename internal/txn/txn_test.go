package txn

import (
	"sync"
	"testing"
	"time"

	"dbspinner/internal/sqltypes"
)

func TestLockSharedCompatible(t *testing.T) {
	lm := NewLockManager()
	lm.Lock(1, "t", Shared)
	lm.Lock(2, "t", Shared) // must not block
	lm.UnlockAll(1)
	lm.UnlockAll(2)
	if lm.Acquired != 2 {
		t.Errorf("Acquired = %d", lm.Acquired)
	}
}

func TestLockExclusiveBlocks(t *testing.T) {
	lm := NewLockManager()
	lm.Lock(1, "t", Exclusive)
	got := make(chan struct{})
	go func() {
		lm.Lock(2, "t", Exclusive)
		close(got)
	}()
	select {
	case <-got:
		t.Fatal("second exclusive lock should block")
	case <-time.After(20 * time.Millisecond):
	}
	lm.UnlockAll(1)
	select {
	case <-got:
	case <-time.After(time.Second):
		t.Fatal("lock not released")
	}
	lm.UnlockAll(2)
}

func TestLockUpgrade(t *testing.T) {
	lm := NewLockManager()
	lm.Lock(1, "t", Shared)
	lm.Lock(1, "t", Exclusive) // sole shared holder upgrades without deadlock
	lm.UnlockAll(1)
}

func TestLockReentrant(t *testing.T) {
	lm := NewLockManager()
	lm.Lock(1, "t", Exclusive)
	lm.Lock(1, "t", Exclusive) // same txn re-acquires
	lm.Lock(1, "t", Shared)
	lm.UnlockAll(1)
}

func TestLockDifferentTables(t *testing.T) {
	lm := NewLockManager()
	lm.Lock(1, "a", Exclusive)
	lm.Lock(2, "b", Exclusive) // different table: no conflict
	lm.UnlockAll(1)
	lm.UnlockAll(2)
}

func TestSharedBlocksExclusive(t *testing.T) {
	lm := NewLockManager()
	lm.Lock(1, "t", Shared)
	acquired := make(chan struct{})
	go func() {
		lm.Lock(2, "t", Exclusive)
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("exclusive should wait for shared")
	case <-time.After(20 * time.Millisecond):
	}
	lm.UnlockAll(1)
	<-acquired
	lm.UnlockAll(2)
}

func TestWALRecords(t *testing.T) {
	w := NewWAL()
	row := sqltypes.Row{sqltypes.NewInt(1), sqltypes.NewFloat(2.5), sqltypes.NewString("x"), sqltypes.NullValue, sqltypes.NewBool(true)}
	w.Append(RecInsert, 7, "edges", row)
	if w.Records != 1 {
		t.Errorf("Records = %d", w.Records)
	}
	if w.Bytes() == 0 {
		t.Error("log should not be empty")
	}
	before := w.Bytes()
	w.Append(RecCommit, 7, "")
	if w.Bytes() <= before {
		t.Error("commit record should grow the log")
	}
	w.Reset()
	if w.Bytes() != 0 || w.Records != 0 {
		t.Error("Reset")
	}
}

func TestWALGrowsWithRows(t *testing.T) {
	w := NewWAL()
	small := sqltypes.Row{sqltypes.NewInt(1)}
	w.Append(RecInsert, 1, "t", small)
	afterOne := w.Bytes()
	rows := make([]sqltypes.Row, 100)
	for i := range rows {
		rows[i] = sqltypes.Row{sqltypes.NewInt(int64(i))}
	}
	w.Append(RecInsert, 1, "t", rows...)
	if w.Bytes() < afterOne+200 {
		t.Errorf("WAL should grow with row count: %d -> %d", afterOne, w.Bytes())
	}
}

func TestManagerAutocommit(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	tx.Lock("t", Exclusive)
	tx.LogInsert("t", sqltypes.Row{sqltypes.NewInt(1)})
	tx.LogUpdate("t", sqltypes.Row{sqltypes.NewInt(1)}, sqltypes.Row{sqltypes.NewInt(2)})
	tx.LogDelete("t", sqltypes.Row{sqltypes.NewInt(2)})
	tx.LogDDL("t")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Error("double commit should fail")
	}
	if m.Committed != 1 {
		t.Errorf("Committed = %d", m.Committed)
	}
	// begin + 4 DML/DDL records + commit
	if m.Log.Records != 6 {
		t.Errorf("Records = %d", m.Log.Records)
	}
	// Locks released: a new txn can lock immediately.
	tx2 := m.Begin()
	done := make(chan struct{})
	go func() {
		tx2.Lock("t", Exclusive)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("locks not released by commit")
	}
	tx2.Abort()
	tx2.Abort() // idempotent
}

func TestConcurrentTransactions(t *testing.T) {
	m := NewManager()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				tx := m.Begin()
				tx.Lock("t", Exclusive)
				tx.LogInsert("t", sqltypes.Row{sqltypes.NewInt(int64(j))})
				if err := tx.Commit(); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	if m.Committed != 400 {
		t.Errorf("Committed = %d", m.Committed)
	}
}

func TestTxnIDsUnique(t *testing.T) {
	m := NewManager()
	seen := map[int64]bool{}
	for i := 0; i < 100; i++ {
		tx := m.Begin()
		if seen[tx.ID] {
			t.Fatalf("duplicate txn id %d", tx.ID)
		}
		seen[tx.ID] = true
		tx.Abort()
	}
}
