package effects

import (
	"strings"
	"testing"
)

func TestConflictsBernstein(t *testing.T) {
	cases := []struct {
		name string
		a, b Set
		want bool
	}{
		{"disjoint writes", Set{Writes: []string{"a"}}, Set{Writes: []string{"b"}}, false},
		{"write-write", Set{Writes: []string{"a"}}, Set{Writes: []string{"A"}}, true},
		{"write-read", Set{Writes: []string{"a"}}, Set{Reads: []string{"a"}}, true},
		{"read-write", Set{Reads: []string{"a"}}, Set{Writes: []string{"a"}}, true},
		{"read-read", Set{Reads: []string{"a"}}, Set{Reads: []string{"a"}}, false},
		{"free acts as write vs read", Set{Frees: []string{"a"}}, Set{Reads: []string{"a"}}, true},
		{"read vs free", Set{Reads: []string{"a"}}, Set{Frees: []string{"a"}}, true},
		{"free-free", Set{Frees: []string{"a"}}, Set{Frees: []string{"a"}}, true},
		{"loop write vs loop read", Set{LoopWrites: []string{"loop#1"}}, Set{LoopReads: []string{"loop#1"}}, true},
		{"loop read vs loop write", Set{LoopReads: []string{"loop#1"}}, Set{LoopWrites: []string{"loop#1"}}, true},
		{"loop reads only", Set{LoopReads: []string{"loop#1"}}, Set{LoopReads: []string{"loop#1"}}, false},
		{"different loops", Set{LoopWrites: []string{"loop#1"}}, Set{LoopWrites: []string{"loop#2"}}, false},
		{"case-insensitive slots", Set{Writes: []string{"Intermediate#PR"}}, Set{Reads: []string{"intermediate#pr"}}, true},
	}
	for _, c := range cases {
		if got := Conflicts(c.a, c.b); got != c.want {
			t.Errorf("%s: Conflicts=%v, want %v", c.name, got, c.want)
		}
	}
}

func TestBarrier(t *testing.T) {
	if (Set{Writes: []string{"a"}}).Barrier() {
		t.Error("plain write set must not be a barrier")
	}
	if !(Set{Control: true}).Barrier() || (Set{Control: true}).BarrierReason() != "loop control" {
		t.Error("control step must be a loop-control barrier")
	}
	if !(Set{ObservesStats: true}).Barrier() || (Set{ObservesStats: true}).BarrierReason() != "observes stats" {
		t.Error("stats-observing step must be a stats barrier")
	}
}

// Program shape: two independent materializations, a control step,
// then a dependent chain — mirroring a pre-loop region (CTE seed plus
// a Common#k block), the loop init, and a loop body.
func testSets() []Set {
	return []Set{
		{Writes: []string{"cte"}},                             // 0
		{Writes: []string{"Common#1"}},                        // 1
		{Control: true, LoopWrites: []string{"loop#1"}},       // 2
		{Reads: []string{"cte", "Common#1"}, Writes: []string{"work"}}, // 3
		{Reads: []string{"cte", "work"}, Writes: []string{"merge"}},    // 4
		{Reads: []string{"merge"}, Writes: []string{"cte"}, Frees: []string{"merge"}}, // 5
		{Control: true, LoopReads: []string{"loop#1"}},        // 6
	}
}

func TestBuildRegions(t *testing.T) {
	sched := Build(testSets(), []int{3})
	if !sched.Covers(7) {
		t.Fatalf("schedule does not cover the program: %+v", sched.Regions)
	}
	if len(sched.Regions) != 4 {
		t.Fatalf("got %d regions, want 4: %+v", len(sched.Regions), sched.Regions)
	}
	r0 := sched.Regions[0]
	if r0.Start != 0 || r0.N != 2 || r0.Barrier {
		t.Errorf("region 0 should be the non-barrier pair [0,2): %+v", r0)
	}
	if r0.Width != 2 || r0.CritPath != 1 {
		t.Errorf("independent pair should have width 2, critical path 1: %+v", r0)
	}
	if !sched.Regions[1].Barrier || sched.Regions[1].Start != 2 {
		t.Errorf("region 1 should be the control barrier at step 2: %+v", sched.Regions[1])
	}
	r2 := sched.Regions[2]
	if r2.Start != 3 || r2.N != 3 || r2.Width != 1 || r2.CritPath != 3 {
		t.Errorf("loop body should be a sequential chain [3,6): %+v", r2)
	}
	if !r2.Ordered(0, 2) {
		t.Error("chain must order step 3 before step 5")
	}
	if r2.Ordered(2, 0) {
		t.Error("edges must only point forward")
	}
	if sched.MaxWidth() != 2 {
		t.Errorf("MaxWidth=%d, want 2", sched.MaxWidth())
	}
	if sched.CritPathSteps() != 6 {
		t.Errorf("CritPathSteps=%d, want 6 (1+1+3+1)", sched.CritPathSteps())
	}
}

func TestJumpTargetSplitsRegion(t *testing.T) {
	sets := []Set{
		{Writes: []string{"a"}},
		{Writes: []string{"b"}},
		{Writes: []string{"c"}},
	}
	// Without the jump target the three independent steps form one
	// width-3 region; a jump landing on step 1 must split it so the
	// program counter re-enters at a region boundary.
	if n := len(Build(sets, nil).Regions); n != 1 {
		t.Fatalf("without targets: %d regions, want 1", n)
	}
	sched := Build(sets, []int{1})
	if len(sched.Regions) != 2 || sched.Regions[1].Start != 1 || sched.Regions[1].N != 2 {
		t.Fatalf("jump target did not split the region: %+v", sched.Regions)
	}
	if sched.RegionAt(1) == nil || sched.RegionAt(2) != nil {
		t.Error("RegionAt must find exactly the region starts")
	}
}

func TestStringRendering(t *testing.T) {
	s := Set{
		Reads:      []string{"PageRank", "pagerank", "Common#1"},
		Writes:     []string{"Intermediate#PageRank"},
		LoopWrites: []string{"loop#1"},
	}
	out := s.String()
	if out != "reads {Common#1, PageRank}; writes {Intermediate#PageRank}; loop-writes {loop#1}" {
		t.Errorf("unexpected rendering: %q", out)
	}
	if (Set{}).String() != "none" {
		t.Errorf("empty set renders as %q, want none", (Set{}).String())
	}
	if !strings.Contains((Set{Control: true}).String(), "control") {
		t.Error("control must be rendered")
	}
}

func TestCoversRejectsGapsAndOverlaps(t *testing.T) {
	ok := Build(testSets(), []int{3})
	if !ok.Covers(7) {
		t.Fatal("well-formed schedule must cover")
	}
	gap := &Schedule{Regions: []Region{{Start: 0, N: 2}, {Start: 3, N: 4}}}
	if gap.Covers(7) {
		t.Error("gap must fail Covers")
	}
	overlap := &Schedule{Regions: []Region{{Start: 0, N: 4}, {Start: 3, N: 4}}}
	if overlap.Covers(7) {
		t.Error("overlap must fail Covers")
	}
	short := &Schedule{Regions: []Region{{Start: 0, N: 4}}}
	if short.Covers(7) {
		t.Error("short cover must fail Covers")
	}
}
