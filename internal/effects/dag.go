package effects

// Region is one scheduling unit of a program: either a single barrier
// step, or a maximal straight-line run of non-barrier steps scheduled
// as a happens-before DAG. Step indices are global (into the program's
// step list); edge endpoints are local (0 .. N-1 within the region).
type Region struct {
	// Start is the global index of the region's first step; N is the
	// number of steps it covers ([Start, Start+N)).
	Start int
	N     int
	// Barrier marks a singleton region that must run alone, in program
	// order; BarrierReason says why ("loop control", "observes stats").
	Barrier       bool
	BarrierReason string
	// Succs[a] lists the local indices of the steps that must wait for
	// local step a (one entry per conflicting later step). Edges always
	// point forward: every b in Succs[a] has b > a.
	Succs [][]int
	// Width is the maximum number of steps the DAG admits concurrently
	// (the widest antichain level); CritPath is the length, in steps, of
	// the longest dependency chain. A fully sequential region has
	// Width 1 and CritPath N.
	Width    int
	CritPath int
}

// End returns the global index one past the region's last step.
func (r *Region) End() int { return r.Start + r.N }

// Ordered reports whether local step a happens before local step b
// under the region's edges (a path a -> b exists).
func (r *Region) Ordered(a, b int) bool {
	if a < 0 || b < 0 || a >= r.N || b >= r.N {
		return false
	}
	seen := make([]bool, r.N)
	stack := []int{a}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, y := range r.Succs[x] {
			if y == b {
				return true
			}
			if y >= 0 && y < r.N && !seen[y] {
				seen[y] = true
				stack = append(stack, y)
			}
		}
	}
	return false
}

// Schedule is the region decomposition of a whole program: regions
// cover the step list contiguously and in order.
type Schedule struct {
	Regions []Region
}

// Build derives the schedule from per-step effect sets. Region cuts
// happen at every barrier step (loop-control or stats-observing, each
// a singleton region) and at every jump target: a backward jump must
// land on a region start, or the program counter would re-enter the
// middle of an already-scheduled DAG. Within a region, an edge a -> b
// is added for every conflicting pair a < b (Bernstein's conditions);
// redundant transitive edges are kept — they change neither the width
// nor the admitted orders.
func Build(sets []Set, jumpTargets []int) *Schedule {
	targets := make(map[int]bool, len(jumpTargets))
	for _, t := range jumpTargets {
		targets[t] = true
	}
	sched := &Schedule{}
	start := -1 // open non-barrier region, -1 when none
	flush := func(end int) {
		if start < 0 {
			return
		}
		sched.Regions = append(sched.Regions, buildRegion(sets, start, end-start))
		start = -1
	}
	for i, s := range sets {
		if s.Barrier() {
			flush(i)
			sched.Regions = append(sched.Regions, Region{
				Start: i, N: 1, Barrier: true, BarrierReason: s.BarrierReason(),
				Succs: make([][]int, 1), Width: 1, CritPath: 1,
			})
			continue
		}
		if targets[i] {
			flush(i)
		}
		if start < 0 {
			start = i
		}
	}
	flush(len(sets))
	return sched
}

// buildRegion wires the conflict edges and computes width and critical
// path by level decomposition: a step's level is one past the deepest
// of its predecessors, the critical path is the deepest level, and the
// width is the size of the most populated level.
func buildRegion(sets []Set, start, n int) Region {
	r := Region{Start: start, N: n, Succs: make([][]int, n)}
	preds := make([][]int, n)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if Conflicts(sets[start+a], sets[start+b]) {
				r.Succs[a] = append(r.Succs[a], b)
				preds[b] = append(preds[b], a)
			}
		}
	}
	level := make([]int, n)
	perLevel := map[int]int{}
	for b := 0; b < n; b++ { // preds all have smaller indices: one pass suffices
		l := 0
		for _, a := range preds[b] {
			if level[a]+1 > l {
				l = level[a] + 1
			}
		}
		level[b] = l
		perLevel[l]++
		if l+1 > r.CritPath {
			r.CritPath = l + 1
		}
	}
	for _, c := range perLevel {
		if c > r.Width {
			r.Width = c
		}
	}
	return r
}

// Covers reports whether the regions partition [0, n) contiguously and
// in order — the shape the scheduler requires before it trusts the
// schedule.
func (s *Schedule) Covers(n int) bool {
	at := 0
	for i := range s.Regions {
		r := &s.Regions[i]
		if r.Start != at || r.N < 1 {
			return false
		}
		at = r.End()
	}
	return at == n
}

// RegionAt returns the region starting exactly at the given global step
// index, or nil.
func (s *Schedule) RegionAt(start int) *Region {
	for i := range s.Regions {
		if s.Regions[i].Start == start {
			return &s.Regions[i]
		}
	}
	return nil
}

// MaxWidth is the widest region of the schedule.
func (s *Schedule) MaxWidth() int {
	w := 0
	for i := range s.Regions {
		if s.Regions[i].Width > w {
			w = s.Regions[i].Width
		}
	}
	return w
}

// CritPathSteps sums the regions' critical paths: the step count of the
// longest serial chain a perfectly parallel executor still has to run.
func (s *Schedule) CritPathSteps() int {
	total := 0
	for i := range s.Regions {
		total += s.Regions[i].CritPath
	}
	return total
}
