// Package effects is the static effect-set analysis over step
// programs: for every step of a rewritten plan it models which
// result-store slots the step reads, writes and frees, which
// loop-control states it touches, and whether it observes global
// statistics. From the per-step sets it builds the happens-before DAG
// of each straight-line region between loop-control steps (Bernstein's
// conditions on the slot sets), which licenses the parallel step
// scheduler in internal/core and is independently re-derived by
// internal/verify before any parallel execution is allowed.
//
// The package is pure: it knows nothing about concrete step types.
// internal/core derives a Set per step through its step registry, and
// internal/verify re-derives them through its own dispatch, so the
// producer and the checker of a schedule fail independently.
package effects

import (
	"sort"
	"strings"
)

// Set is the effect set of one step. Slot names are result-store
// names in display case; all comparisons are case-insensitive, matching
// SQL identifier semantics. Loop slots name loop-operator states
// ("loop#1", "loop#2", ... in program order).
type Set struct {
	// Reads, Writes and Frees are the result-store slots the step
	// consumes, (re)binds and releases. A freed slot is treated as
	// written for conflict purposes: freeing under a concurrent reader
	// is as unsound as overwriting it.
	Reads  []string
	Writes []string
	Frees  []string
	// LoopReads and LoopWrites are the loop-control states the step
	// observes and mutates (update counters, changed-key sets, delta
	// snapshots).
	LoopReads  []string
	LoopWrites []string
	// ObservesStats marks steps whose behavior depends on (or
	// non-commutatively mutates) the global statistics — such a step
	// cannot be reordered against anything and is a barrier.
	ObservesStats bool
	// Control marks loop-control steps (initialize/update/jump): they
	// delimit the straight-line regions and are always barriers.
	Control bool
}

// Barrier reports whether the step must be a scheduling barrier:
// loop-control steps and stats-observing steps are never reordered or
// run concurrently with anything.
func (s Set) Barrier() bool { return s.Control || s.ObservesStats }

// BarrierReason names why a set is a barrier, for EXPLAIN and
// diagnostics ("" when it is not one).
func (s Set) BarrierReason() string {
	switch {
	case s.Control:
		return "loop control"
	case s.ObservesStats:
		return "observes stats"
	}
	return ""
}

// norm lowercases a slot name for comparison.
func norm(name string) string { return strings.ToLower(name) }

// normSet folds name slices into one case-normalized membership set.
func normSet(groups ...[]string) map[string]bool {
	out := make(map[string]bool)
	for _, g := range groups {
		for _, n := range g {
			out[norm(n)] = true
		}
	}
	return out
}

func intersects(a map[string]bool, groups ...[]string) bool {
	for _, g := range groups {
		for _, n := range g {
			if a[norm(n)] {
				return true
			}
		}
	}
	return false
}

// Conflicts applies Bernstein's conditions to two effect sets: the
// steps conflict (must keep their program order) unless their write
// sets are disjoint from each other's read and write sets. Frees count
// as writes, and loop-control slots are checked exactly like
// result-store slots.
func Conflicts(a, b Set) bool {
	aw := normSet(a.Writes, a.Frees)
	bw := normSet(b.Writes, b.Frees)
	if intersects(aw, b.Reads, b.Writes, b.Frees) {
		return true
	}
	if intersects(bw, a.Reads) {
		return true
	}
	alw := normSet(a.LoopWrites)
	blw := normSet(b.LoopWrites)
	if intersects(alw, b.LoopReads, b.LoopWrites) {
		return true
	}
	return intersects(blw, a.LoopReads)
}

// names renders a slot group as "{a, b}", sorted case-insensitively and
// deduplicated, keeping the first spelling seen.
func names(group []string) string {
	seen := map[string]string{}
	var keys []string
	for _, n := range group {
		k := norm(n)
		if _, ok := seen[k]; !ok {
			seen[k] = n
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(seen[k])
	}
	b.WriteByte('}')
	return b.String()
}

// String renders the set for EXPLAIN, e.g.
//
//	reads {PageRank}; writes {Merge#PageRank}; loop-writes {loop#1}
//
// An empty set renders as "none".
func (s Set) String() string {
	var parts []string
	if len(s.Reads) > 0 {
		parts = append(parts, "reads "+names(s.Reads))
	}
	if len(s.Writes) > 0 {
		parts = append(parts, "writes "+names(s.Writes))
	}
	if len(s.Frees) > 0 {
		parts = append(parts, "frees "+names(s.Frees))
	}
	if len(s.LoopReads) > 0 {
		parts = append(parts, "loop-reads "+names(s.LoopReads))
	}
	if len(s.LoopWrites) > 0 {
		parts = append(parts, "loop-writes "+names(s.LoopWrites))
	}
	if s.ObservesStats {
		parts = append(parts, "observes stats")
	}
	if s.Control {
		parts = append(parts, "control")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "; ")
}
