package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dbspinner"
	"dbspinner/internal/workload"
)

// Config controls an experiment run.
type Config struct {
	// Preset names the workload dataset ("dblp-small", "pokec-small",
	// ...).
	Preset string
	// Nodes overrides the preset's node count (0 keeps the preset).
	Nodes int
	// Iterations is the loop bound for the iterative queries.
	Iterations int
	// Reps is the number of timed repetitions; the median is reported
	// (default 3).
	Reps int
	// Partitions for the engines (default 4).
	Partitions int
	// AvailFrac is the fraction of available nodes in vertexStatus
	// (default 0.8).
	AvailFrac float64
}

func (c Config) withDefaults() Config {
	if c.Preset == "" {
		c.Preset = "dblp-small"
	}
	if c.Iterations == 0 {
		c.Iterations = 10
	}
	if c.Reps == 0 {
		c.Reps = 3
	}
	if c.Partitions == 0 {
		c.Partitions = 4
	}
	if c.AvailFrac == 0 {
		c.AvailFrac = 0.8
	}
	return c
}

// Experiment is one reproduced table or figure.
type Experiment struct {
	ID      string // e.g. "fig8"
	Title   string
	Headers []string
	Rows    [][]string
	Notes   string
}

// Render prints the experiment as an aligned text table.
func (e *Experiment) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", e.ID, e.Title)
	widths := make([]int, len(e.Headers))
	all := append([][]string{e.Headers}, e.Rows...)
	for _, row := range all {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, row := range all {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(row)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	if e.Notes != "" {
		b.WriteString(e.Notes)
		b.WriteByte('\n')
	}
	return b.String()
}

// Markdown renders the experiment as a Markdown table for
// EXPERIMENTS.md.
func (e *Experiment) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", e.ID, e.Title)
	b.WriteString("| " + strings.Join(e.Headers, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(e.Headers)) + "\n")
	for _, row := range e.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if e.Notes != "" {
		b.WriteString("\n" + e.Notes + "\n")
	}
	return b.String()
}

// dataset generates (or reuses) the graph for a config.
func dataset(cfg Config) (*workload.Graph, error) {
	p, ok := workload.Presets[strings.ToLower(cfg.Preset)]
	if !ok {
		return nil, fmt.Errorf("unknown preset %q", cfg.Preset)
	}
	nodes := p.Nodes
	if cfg.Nodes > 0 {
		nodes = cfg.Nodes
	}
	return workload.PreferentialAttachment(nodes, p.OutDeg, p.Mode, 42), nil
}

// NewEngine builds an engine loaded with the dataset's edges and
// vertexStatus tables.
func NewEngine(g *workload.Graph, cfg Config, engineCfg dbspinner.Config) (*dbspinner.Engine, error) {
	if engineCfg.Partitions == 0 {
		engineCfg.Partitions = cfg.Partitions
	}
	e := dbspinner.New(engineCfg)
	if _, err := e.Exec("CREATE TABLE edges (src int, dst int, weight float)"); err != nil {
		return nil, err
	}
	if err := e.BulkInsert("edges", workload.EdgeRows(g)); err != nil {
		return nil, err
	}
	if _, err := e.Exec("CREATE TABLE vertexStatus (node int PRIMARY KEY, status int)"); err != nil {
		return nil, err
	}
	if err := e.BulkInsert("vertexStatus", workload.VertexStatus(g, cfg.AvailFrac, 99)); err != nil {
		return nil, err
	}
	return e, nil
}

// timeMedian runs f reps times (plus one warmup) and returns the
// median duration.
func timeMedian(reps int, f func() error) (time.Duration, error) {
	if err := f(); err != nil { // warmup
		return 0, err
	}
	times := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		times = append(times, time.Since(start))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2], nil
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f ms", float64(d.Microseconds())/1000)
}

func speedup(base, opt time.Duration) string {
	if opt <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(base)/float64(opt))
}

func improvement(base, opt time.Duration) string {
	if base <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", 100*(1-float64(opt)/float64(base)))
}
