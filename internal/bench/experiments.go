package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dbspinner"
	"dbspinner/internal/middleware"
	"dbspinner/internal/proc"
	"dbspinner/internal/workload"
)

// TableI reproduces Table I: the six-step logical plan of the PR query
// after the functional rewrite.
func TableI(cfg Config) (*Experiment, error) {
	cfg = cfg.withDefaults()
	g, err := dataset(cfg)
	if err != nil {
		return nil, err
	}
	e, err := NewEngine(g, cfg, dbspinner.Config{DisableCommonResultOpt: true})
	if err != nil {
		return nil, err
	}
	out, err := e.Explain(PRQuery(10))
	if err != nil {
		return nil, err
	}
	return &Experiment{
		ID:      "table1",
		Title:   "Logical plan of the PR query (paper Table I)",
		Headers: []string{"Rewritten step program"},
		Rows:    [][]string{{""}},
		Notes:   out,
	}, nil
}

// Fig8 reproduces Figure 8: minimizing data movement (rename operator
// vs copy-back baseline) for the FF and PR queries.
func Fig8(cfg Config) (*Experiment, error) {
	cfg = cfg.withDefaults()
	g, err := dataset(cfg)
	if err != nil {
		return nil, err
	}
	type q struct {
		name string
		sql  string
	}
	queries := []q{
		{"FF", FFQuery(cfg.Iterations, 2)},
		{"PR", PRQuery(cfg.Iterations)},
	}
	exp := &Experiment{
		ID:      "fig8",
		Title:   fmt.Sprintf("Minimizing data movement (%s, %d iterations)", cfg.Preset, cfg.Iterations),
		Headers: []string{"query", "baseline (copy-back)", "optimized (rename)", "improvement"},
	}
	for _, query := range queries {
		base, err := runTimed(g, cfg, dbspinner.Config{DisableRenameOpt: true}, query.sql)
		if err != nil {
			return nil, err
		}
		opt, err := runTimed(g, cfg, dbspinner.Config{}, query.sql)
		if err != nil {
			return nil, err
		}
		exp.Rows = append(exp.Rows, []string{query.name, ms(base), ms(opt), improvement(base, opt)})
	}
	exp.Notes = "Paper: FF improves up to 48%; PR with its expensive iterative part barely moves."
	return exp, nil
}

// Fig9 reproduces Figure 9: the common-result optimization on PR-VS
// and SSSP-VS across two datasets.
func Fig9(cfg Config, presets []string) (*Experiment, error) {
	cfg = cfg.withDefaults()
	if len(presets) == 0 {
		presets = []string{"dblp-small", "pokec-small"}
	}
	exp := &Experiment{
		ID:      "fig9",
		Title:   fmt.Sprintf("Common-result optimization (%d iterations)", cfg.Iterations),
		Headers: []string{"query", "dataset", "baseline", "optimized", "improvement"},
	}
	for _, preset := range presets {
		pcfg := cfg
		pcfg.Preset = preset
		g, err := dataset(pcfg)
		if err != nil {
			return nil, err
		}
		for _, query := range []struct {
			name string
			sql  string
		}{
			{"PR-VS", PRVSQuery(cfg.Iterations)},
			{"SSSP-VS", SSSPVSQuery(1, cfg.Iterations)},
		} {
			base, err := runTimed(g, pcfg, dbspinner.Config{DisableCommonResultOpt: true}, query.sql)
			if err != nil {
				return nil, err
			}
			opt, err := runTimed(g, pcfg, dbspinner.Config{}, query.sql)
			if err != nil {
				return nil, err
			}
			exp.Rows = append(exp.Rows, []string{query.name, preset, ms(base), ms(opt), improvement(base, opt)})
		}
	}
	exp.Notes = "Paper: ~20% on DBLP, ~10% on Pokec; similar for both queries. The sparser graph gains more because the constant block is proportionally larger."
	return exp, nil
}

// Fig10 reproduces Figure 10: predicate push down on the FF query
// across selectivities (MOD(node, X) = 0 keeps 1/X of the rows).
func Fig10(cfg Config, mods []int) (*Experiment, error) {
	cfg = cfg.withDefaults()
	if len(mods) == 0 {
		mods = []int{2, 4, 10, 25, 100}
	}
	g, err := dataset(cfg)
	if err != nil {
		return nil, err
	}
	exp := &Experiment{
		ID:      "fig10",
		Title:   fmt.Sprintf("Predicate push down, FF query (%s, %d iterations)", cfg.Preset, cfg.Iterations),
		Headers: []string{"selectivity", "baseline", "pushed", "speedup"},
	}
	for _, mod := range mods {
		sql := FFQuery(cfg.Iterations, mod)
		base, err := runTimed(g, cfg, dbspinner.Config{DisablePredicatePushdown: true}, sql)
		if err != nil {
			return nil, err
		}
		opt, err := runTimed(g, cfg, dbspinner.Config{}, sql)
		if err != nil {
			return nil, err
		}
		exp.Rows = append(exp.Rows, []string{
			fmt.Sprintf("1/%d (%.0f%%)", mod, 100.0/float64(mod)),
			ms(base), ms(opt), speedup(base, opt),
		})
	}
	exp.Notes = "Paper: the baseline is flat across selectivities; the pushed plan improves with selectivity, exceeding 10x at 1%."
	return exp, nil
}

// Fig11 reproduces Figure 11: optimized iterative CTEs vs the
// equivalent stored procedures for PR-VS, SSSP-VS and FF (50%
// selectivity).
func Fig11(cfg Config) (*Experiment, error) {
	cfg = cfg.withDefaults()
	g, err := dataset(cfg)
	if err != nil {
		return nil, err
	}
	type item struct {
		name string
		sql  string
		proc *proc.Procedure
	}
	items := []item{
		{"PR-VS", PRVSQuery(cfg.Iterations), proc.PageRank(cfg.Iterations, true)},
		{"SSSP-VS", SSSPVSQuery(1, cfg.Iterations), proc.SSSP(1, cfg.Iterations, true)},
		{"FF (50%)", FFQuery(cfg.Iterations, 2), proc.Forecast(cfg.Iterations, 2)},
	}
	exp := &Experiment{
		ID:      "fig11",
		Title:   fmt.Sprintf("Iterative CTEs vs stored procedures (%s, %d iterations)", cfg.Preset, cfg.Iterations),
		Headers: []string{"query", "stored procedure", "iterative CTE", "CTE speedup"},
	}
	for _, it := range items {
		e, err := NewEngine(g, cfg, dbspinner.Config{})
		if err != nil {
			return nil, err
		}
		procTime, err := timeMedian(cfg.Reps, func() error {
			_, err := proc.Run(e, it.proc)
			return err
		})
		if err != nil {
			return nil, err
		}
		cteTime, err := timeMedian(cfg.Reps, func() error {
			_, err := e.Query(it.sql)
			return err
		})
		if err != nil {
			return nil, err
		}
		exp.Rows = append(exp.Rows, []string{it.name, ms(procTime), ms(cteTime), speedup(procTime, cteTime)})
	}
	exp.Notes = "Paper: CTEs are at least 25% faster for PR and SSSP, and more than 80% faster for FF (early predicate evaluation)."
	return exp, nil
}

// MiddlewareAblation is the extra experiment backing §I/§II: native
// single-plan execution vs the external middleware driver.
func MiddlewareAblation(cfg Config) (*Experiment, error) {
	cfg = cfg.withDefaults()
	g, err := dataset(cfg)
	if err != nil {
		return nil, err
	}
	e, err := NewEngine(g, cfg, dbspinner.Config{})
	if err != nil {
		return nil, err
	}
	client := middleware.NewClient(e)
	p := proc.PageRank(cfg.Iterations, false)
	mwTime, err := timeMedian(cfg.Reps, func() error {
		_, err := client.RunIterative(p)
		return err
	})
	if err != nil {
		return nil, err
	}
	cteTime, err := timeMedian(cfg.Reps, func() error {
		_, err := e.Query(PRQuery(cfg.Iterations))
		return err
	})
	if err != nil {
		return nil, err
	}
	e.ResetStats()
	if _, err := client.RunIterative(p); err != nil {
		return nil, err
	}
	st := e.Stats()
	return &Experiment{
		ID:      "middleware",
		Title:   fmt.Sprintf("Native iterative CTE vs external middleware, PR (%s, %d iterations)", cfg.Preset, cfg.Iterations),
		Headers: []string{"mode", "time", "statements", "WAL records", "locks"},
		Rows: [][]string{
			{"middleware", ms(mwTime), fmt.Sprint(st.Statements), fmt.Sprint(st.WALRecords), fmt.Sprint(st.LocksAcquired)},
			{"native CTE", ms(cteTime), "0", "0", "0"},
		},
		Notes: fmt.Sprintf("CTE speedup %s; the middleware pays per-statement DDL/DML, locking and logging the single plan avoids (§II).", speedup(mwTime, cteTime)),
	}, nil
}

// ParallelScaling measures MPP fragment execution against the
// single-threaded volcano executor (a substrate ablation; the paper's
// engine is inherently parallel).
func ParallelScaling(cfg Config, parts []int) (*Experiment, error) {
	cfg = cfg.withDefaults()
	if len(parts) == 0 {
		parts = []int{1, 2, 4, 8}
	}
	g, err := dataset(cfg)
	if err != nil {
		return nil, err
	}
	sql := PRQuery(cfg.Iterations)
	serial, err := runTimed(g, cfg, dbspinner.Config{Partitions: cfg.Partitions}, sql)
	if err != nil {
		return nil, err
	}
	exp := &Experiment{
		ID:      "parallel",
		Title:   fmt.Sprintf("MPP scaling, PR (%s, %d iterations; serial baseline %s)", cfg.Preset, cfg.Iterations, ms(serial)),
		Headers: []string{"partitions", "time", "speedup vs serial"},
	}
	for _, p := range parts {
		t, err := runTimed(g, cfg, dbspinner.Config{Partitions: p, Parallel: true}, sql)
		if err != nil {
			return nil, err
		}
		exp.Rows = append(exp.Rows, []string{fmt.Sprint(p), ms(t), speedup(serial, t)})
	}
	return exp, nil
}

// DeltaComparison is the experiment behind delta iteration
// (Config.DeltaIteration): full Ri re-evaluation vs the changed-row
// frontier on converging workloads. The run fails if the two modes
// disagree on a single row; the interesting columns are the CTE rows
// actually fed to Ri's iterative reference.
func DeltaComparison(cfg Config) (*Experiment, error) {
	cfg = cfg.withDefaults()
	g, err := dataset(cfg)
	if err != nil {
		return nil, err
	}
	queries := []struct {
		name string
		sql  string
	}{
		{"SSSP", SSSPQuery(1, cfg.Iterations)},
		{"PR-VS", PRVSQuery(cfg.Iterations)},
	}
	exp := &Experiment{
		ID:      "delta",
		Title:   fmt.Sprintf("Delta iteration vs full re-evaluation (%s, %d iterations)", cfg.Preset, cfg.Iterations),
		Headers: []string{"query", "full", "delta", "speedup", "Ri rows (full)", "Ri rows (delta)", "rows saved"},
	}
	for _, query := range queries {
		fullRows, fullTime, _, err := deltaRun(g, cfg, dbspinner.Config{}, query.sql)
		if err != nil {
			return nil, err
		}
		deltaRows, deltaTime, st, err := deltaRun(g, cfg, dbspinner.Config{DeltaIteration: true}, query.sql)
		if err != nil {
			return nil, err
		}
		if why := sameRowMultiset(fullRows, deltaRows); why != "" {
			return nil, fmt.Errorf("delta iteration changed the %s result: %s", query.name, why)
		}
		if st.RiFullRows == 0 {
			return nil, fmt.Errorf("delta iteration did not engage on %s (no restricted materializations ran)", query.name)
		}
		saved := "-"
		if st.RiFullRows > 0 {
			saved = fmt.Sprintf("%.0f%%", 100*(1-float64(st.RiInputRows)/float64(st.RiFullRows)))
		}
		exp.Rows = append(exp.Rows, []string{
			query.name, ms(fullTime), ms(deltaTime), speedup(fullTime, deltaTime),
			fmt.Sprint(st.RiFullRows), fmt.Sprint(st.RiInputRows), saved,
		})
	}
	exp.Notes = "Results are asserted identical row for row. 'Ri rows' counts the iterative-reference input summed over iterations: the full CTE every time vs the affected frontier (changed keys plus their equijoin images)."
	return exp, nil
}

// PruningComparison is the experiment behind column-level dataflow
// (Config.DisableColumnPruning): projection pruning, common-block filter
// hoisting and liveness-driven truncation vs full-width
// materialization. The run fails if the two modes disagree on a single
// row; the interesting metric is materialized cells (rows x columns)
// moved per iteration — written into intermediate results plus read
// back out of them — which the pruned plans must cut by at least 20%
// on PR-VS.
func PruningComparison(cfg Config) (*Experiment, error) {
	cfg = cfg.withDefaults()
	g, err := dataset(cfg)
	if err != nil {
		return nil, err
	}
	queries := []struct {
		name string
		sql  string
	}{
		{"PR-VS", PRVSQuery(cfg.Iterations)},
		{"SSSP-VS", SSSPVSQuery(1, cfg.Iterations)},
	}
	exp := &Experiment{
		ID:      "pruning",
		Title:   fmt.Sprintf("Column pruning and liveness truncation (%s, %d iterations)", cfg.Preset, cfg.Iterations),
		Headers: []string{"query", "full", "pruned", "speedup", "cells/iter (full)", "cells/iter (pruned)", "cells saved"},
	}
	for _, query := range queries {
		fullRows, fullTime, fullStats, err := deltaRun(g, cfg, dbspinner.Config{DisableColumnPruning: true}, query.sql)
		if err != nil {
			return nil, err
		}
		prunedRows, prunedTime, prunedStats, err := deltaRun(g, cfg, dbspinner.Config{}, query.sql)
		if err != nil {
			return nil, err
		}
		if why := sameRowMultiset(fullRows, prunedRows); why != "" {
			return nil, fmt.Errorf("column pruning changed the %s result: %s", query.name, why)
		}
		fullCells := fullStats.MaterializedCells + fullStats.ResultCellsRead
		prunedCells := prunedStats.MaterializedCells + prunedStats.ResultCellsRead
		if fullCells == 0 {
			return nil, fmt.Errorf("no materialized cells counted on %s", query.name)
		}
		saved := 100 * (1 - float64(prunedCells)/float64(fullCells))
		if query.name == "PR-VS" && saved < 20 {
			return nil, fmt.Errorf("column pruning moved only %.1f%% fewer cells on PR-VS, expected at least 20%%", saved)
		}
		iters := int64(cfg.Iterations)
		exp.Rows = append(exp.Rows, []string{
			query.name, ms(fullTime), ms(prunedTime), speedup(fullTime, prunedTime),
			fmt.Sprint(fullCells / iters), fmt.Sprint(prunedCells / iters),
			fmt.Sprintf("%.0f%%", saved),
		})
	}
	exp.Notes = "Results are asserted identical row for row. 'Cells' counts rows x columns written into intermediate results plus read back from them, summed over the run; the pruned plans materialize only live columns and truncate results at their last use."
	return exp, nil
}

// SchedComparison is the experiment behind the effect-set licensed
// step scheduler (Config.ParallelSteps): the sequential pc-loop vs the
// region-DAG scheduler on every workload query, alongside the static
// shape of each schedule (region count, max width, critical path) as
// EXPLAIN reports it. The run fails if the two modes disagree on a
// single row or on row order — the scheduler's contract is byte
// identity, so the ordered comparator is deliberate.
func SchedComparison(cfg Config) (*Experiment, error) {
	cfg = cfg.withDefaults()
	g, err := dataset(cfg)
	if err != nil {
		return nil, err
	}
	queries := []struct {
		name string
		sql  string
	}{
		{"PR", PRQuery(cfg.Iterations)},
		{"PR-VS", PRVSQuery(cfg.Iterations)},
		{"SSSP", SSSPQuery(1, cfg.Iterations)},
		{"SSSP-VS", SSSPVSQuery(1, cfg.Iterations)},
		{"FF (50%)", FFQuery(cfg.Iterations, 2)},
	}
	exp := &Experiment{
		ID:      "sched",
		Title:   fmt.Sprintf("Effect-licensed step scheduling (%s, %d iterations, %d workers)", cfg.Preset, cfg.Iterations, schedWorkers),
		Headers: []string{"query", "sequential", "scheduled", "speedup", "regions", "max width", "critical path"},
	}
	sawWidth := false
	for _, query := range queries {
		seqRows, seqTime, _, err := deltaRun(g, cfg, dbspinner.Config{}, query.sql)
		if err != nil {
			return nil, err
		}
		scfg := dbspinner.Config{ParallelSteps: schedWorkers}
		schedRows, schedTime, _, err := deltaRun(g, cfg, scfg, query.sql)
		if err != nil {
			return nil, err
		}
		if why := sameRowSequence(seqRows, schedRows); why != "" {
			return nil, fmt.Errorf("step scheduling changed the %s result: %s", query.name, why)
		}
		e, err := NewEngine(g, cfg, scfg)
		if err != nil {
			return nil, err
		}
		out, err := e.Explain(query.sql)
		if err != nil {
			return nil, err
		}
		regions, width, crit, total, err := parseScheduleSummary(out)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", query.name, err)
		}
		if width > 1 {
			sawWidth = true
		}
		exp.Rows = append(exp.Rows, []string{
			query.name, ms(seqTime), ms(schedTime), speedup(seqTime, schedTime),
			fmt.Sprint(regions), fmt.Sprint(width), fmt.Sprintf("%d of %d steps", crit, total),
		})
	}
	if !sawWidth {
		return nil, fmt.Errorf("no workload schedule exposes a region of width > 1; the analysis licenses nothing")
	}
	exp.Notes = "Results are asserted byte-identical, row order included. 'Regions' counts the barrier-delimited straight-line regions of the step program; 'max width' is the widest antichain of the happens-before DAG the effect sets license; loop-control and stats-observing steps are barriers, so the loop body itself bounds the win."
	return exp, nil
}

// schedWorkers is the worker-pool bound the sched experiment runs
// with; it matches the oracle parity matrix.
const schedWorkers = 4

// parseScheduleSummary extracts the region-DAG shape from an EXPLAIN's
// "Schedule: R regions; max width W; critical path C of N steps." line.
func parseScheduleSummary(explain string) (regions, width, crit, total int, err error) {
	i := strings.Index(explain, "Schedule: ")
	if i < 0 {
		return 0, 0, 0, 0, fmt.Errorf("EXPLAIN prints no schedule summary")
	}
	if _, err := fmt.Sscanf(explain[i:], "Schedule: %d regions; max width %d; critical path %d of %d steps.",
		&regions, &width, &crit, &total); err != nil {
		return 0, 0, 0, 0, fmt.Errorf("malformed schedule summary: %w", err)
	}
	return regions, width, crit, total, nil
}

// sameRowSequence compares two row slices in order and returns a
// description of the first difference ("" when equal). Unlike
// sameRowMultiset it does not sort: the scheduler must preserve the
// sequential pc-loop's output exactly.
func sameRowSequence(a, b []dbspinner.Row) string {
	if len(a) != len(b) {
		return fmt.Sprintf("%d rows vs %d", len(a), len(b))
	}
	for i := range a {
		if as, bs := a[i].String(), b[i].String(); as != bs {
			return fmt.Sprintf("row %d: %q vs %q", i, as, bs)
		}
	}
	return ""
}

// deltaRun times a query on a fresh engine and returns the rows and
// stats of one clean-stat execution.
func deltaRun(g *workload.Graph, cfg Config, ecfg dbspinner.Config, sql string) ([]dbspinner.Row, time.Duration, dbspinner.Stats, error) {
	e, err := NewEngine(g, cfg, ecfg)
	if err != nil {
		return nil, 0, dbspinner.Stats{}, err
	}
	med, err := timeMedian(cfg.Reps, func() error {
		_, err := e.Query(sql)
		return err
	})
	if err != nil {
		return nil, 0, dbspinner.Stats{}, err
	}
	e.ResetStats()
	res, err := e.Query(sql)
	if err != nil {
		return nil, 0, dbspinner.Stats{}, err
	}
	return res.Rows, med, e.Stats(), nil
}

// sameRowMultiset compares two row sets ignoring order and returns a
// description of the first difference ("" when equal).
func sameRowMultiset(a, b []dbspinner.Row) string {
	if len(a) != len(b) {
		return fmt.Sprintf("%d rows vs %d", len(a), len(b))
	}
	as := make([]string, len(a))
	bs := make([]string, len(b))
	for i := range a {
		as[i] = a[i].String()
		bs[i] = b[i].String()
	}
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return fmt.Sprintf("row %d: %q vs %q", i, as[i], bs[i])
		}
	}
	return ""
}

// runTimed loads a fresh engine and reports the median query time.
func runTimed(g *workload.Graph, cfg Config, ecfg dbspinner.Config, sql string) (time.Duration, error) {
	e, err := NewEngine(g, cfg, ecfg)
	if err != nil {
		return 0, err
	}
	return timeMedian(cfg.Reps, func() error {
		_, err := e.Query(sql)
		return err
	})
}

// TraceOverhead measures the runtime cost of per-iteration tracing
// (Config.TraceIterations) and asserts the tracing-off path stays the
// default: results byte-identical, the traced run produces one span
// per loop iteration, and the traced runtime stays within a generous
// noise band of the untraced one (tracing adds two clock reads per
// step and one small append per iteration; a blow-up indicates the
// no-op path regressed).
func TraceOverhead(cfg Config) (*Experiment, error) {
	cfg = cfg.withDefaults()
	g, err := dataset(cfg)
	if err != nil {
		return nil, err
	}
	queries := []struct {
		name string
		sql  string
	}{
		{"PR", PRQuery(cfg.Iterations)},
		{"SSSP", SSSPQuery(1, cfg.Iterations)},
	}
	exp := &Experiment{
		ID:      "trace",
		Title:   fmt.Sprintf("Iteration-trace overhead (%s, %d iterations)", cfg.Preset, cfg.Iterations),
		Headers: []string{"query", "tracing off", "tracing on", "overhead", "iterations traced"},
	}
	for _, query := range queries {
		offRows, offTime, _, err := deltaRun(g, cfg, dbspinner.Config{}, query.sql)
		if err != nil {
			return nil, err
		}
		onRows, onTime, onStats, err := deltaRun(g, cfg, dbspinner.Config{TraceIterations: true}, query.sql)
		if err != nil {
			return nil, err
		}
		if why := sameRowSequence(offRows, onRows); why != "" {
			return nil, fmt.Errorf("tracing changed the %s result: %s", query.name, why)
		}
		tr := onStats.IterationTrace
		if tr == nil {
			return nil, fmt.Errorf("%s: TraceIterations produced no IterationTrace", query.name)
		}
		if len(tr.Spans) != int(onStats.Iterations) {
			return nil, fmt.Errorf("%s: trace has %d spans for %d iterations", query.name, len(tr.Spans), onStats.Iterations)
		}
		for i, sp := range tr.Spans {
			if sp.Iteration != i+1 {
				return nil, fmt.Errorf("%s: span %d numbered %d", query.name, i, sp.Iteration)
			}
		}
		// Noise gate, deliberately loose for single-rep CI boxes: the
		// traced run must not take triple the untraced time plus half a
		// second. Tracing's real cost is nanoseconds per step.
		if onTime > 3*offTime+500*time.Millisecond {
			return nil, fmt.Errorf("%s: tracing overhead out of noise band: off %v, on %v", query.name, offTime, onTime)
		}
		exp.Rows = append(exp.Rows, []string{
			query.name, ms(offTime), ms(onTime), speedup(onTime, offTime),
			fmt.Sprint(len(tr.Spans)),
		})
	}
	exp.Notes = "Results are asserted byte-identical with tracing on and off; the traced run must produce exactly one span per loop iteration, numbered from 1, and stay within a noise band of the untraced run (the untraced path allocates nothing and never reads the clock)."
	return exp, nil
}

// FaultTolerance is the experiment behind iteration-granular fault
// tolerance (Config.RetryPolicy / Config.FaultSchedule): the
// checkpointing-off and checkpointing-on runs must return
// byte-identical rows with the on-run's cost inside a noise band (the
// back-edge snapshot clones slice headers, not rows), and a run with
// deterministic faults injected mid-loop — one step panic, one storage
// error — must retry from its checkpoints back to the exact same rows.
func FaultTolerance(cfg Config) (*Experiment, error) {
	cfg = cfg.withDefaults()
	g, err := dataset(cfg)
	if err != nil {
		return nil, err
	}
	queries := []struct {
		name string
		sql  string
	}{
		{"PR", PRQuery(cfg.Iterations)},
		{"SSSP", SSSPQuery(1, cfg.Iterations)},
	}
	schedule := []dbspinner.Fault{
		{Point: "step", Hit: 2, Mode: dbspinner.FaultModePanic},
		{Point: "storage", Hit: 3, Mode: dbspinner.FaultModeError},
	}
	exp := &Experiment{
		ID:      "faults",
		Title:   fmt.Sprintf("Checkpoint/retry fault tolerance (%s, %d iterations)", cfg.Preset, cfg.Iterations),
		Headers: []string{"query", "checkpointing off", "checkpointing on", "overhead", "faulted run", "retries"},
	}
	for _, query := range queries {
		offRows, offTime, _, err := deltaRun(g, cfg, dbspinner.Config{}, query.sql)
		if err != nil {
			return nil, err
		}
		onCfg := dbspinner.Config{RetryPolicy: dbspinner.RetryPolicy{MaxAttempts: 2}}
		onRows, onTime, onStats, err := deltaRun(g, cfg, onCfg, query.sql)
		if err != nil {
			return nil, err
		}
		if why := sameRowSequence(offRows, onRows); why != "" {
			return nil, fmt.Errorf("checkpointing changed the %s result: %s", query.name, why)
		}
		if onStats.Retries != 0 || onStats.Degradations != 0 {
			return nil, fmt.Errorf("%s: unfaulted checkpointed run recorded %d retries, %d degradations",
				query.name, onStats.Retries, onStats.Degradations)
		}
		// Noise gate, deliberately loose for single-rep CI boxes: the
		// checkpointed run must not take triple the plain time plus half
		// a second. A snapshot clones partition slice headers only.
		if onTime > 3*offTime+500*time.Millisecond {
			return nil, fmt.Errorf("%s: checkpointing overhead out of noise band: off %v, on %v", query.name, offTime, onTime)
		}
		faultCfg := onCfg
		faultCfg.FaultSchedule = schedule
		faultRows, faultTime, faultStats, err := deltaRun(g, cfg, faultCfg, query.sql)
		if err != nil {
			return nil, fmt.Errorf("%s: faulted run did not retry to success: %w", query.name, err)
		}
		if why := sameRowSequence(offRows, faultRows); why != "" {
			return nil, fmt.Errorf("retried %s run diverges from the unfaulted one: %s", query.name, why)
		}
		if faultStats.Retries == 0 {
			return nil, fmt.Errorf("%s: scheduled faults never fired", query.name)
		}
		exp.Rows = append(exp.Rows, []string{
			query.name, ms(offTime), ms(onTime), speedup(onTime, offTime),
			ms(faultTime), fmt.Sprint(faultStats.Retries),
		})
	}
	exp.Notes = fmt.Sprintf("Results are asserted byte-identical with checkpointing off and on, and again for a run with the deterministic fault schedule %q injected mid-loop: each fault is contained, the loop state restored from its back-edge checkpoint, and the iteration re-run. The checkpointed run must stay within a noise band of the plain one.",
		dbspinner.FormatFaultSchedule(schedule))
	return exp, nil
}

// ShuffleComparison is the experiment behind partition-property
// analysis (Config.DisableShuffleElision): every exchange materialized
// vs the property-licensed elisions, on every workload query, over the
// same parallel plans and partition count. The elided runs execute
// with the dynamic co-location guard armed, so each skipped exchange
// is re-checked row by row at consumption; the run fails if the two
// modes disagree on a single row or on row order. The interesting
// metric is Stats.RowsShuffled — rows routed through exchange
// operators — which the licensed plans must strictly cut on the VS
// variants (their loop bodies join and aggregate on the CTE key the
// loop provably preserves).
func ShuffleComparison(cfg Config) (*Experiment, error) {
	cfg = cfg.withDefaults()
	g, err := dataset(cfg)
	if err != nil {
		return nil, err
	}
	queries := []struct {
		name string
		vs   bool
		sql  string
	}{
		{"PR", false, PRQuery(cfg.Iterations)},
		{"PR-VS", true, PRVSQuery(cfg.Iterations)},
		{"SSSP", false, SSSPQuery(1, cfg.Iterations)},
		{"SSSP-VS", true, SSSPVSQuery(1, cfg.Iterations)},
		{"FF (50%)", false, FFQuery(cfg.Iterations, 2)},
	}
	exp := &Experiment{
		ID:      "shuffle",
		Title:   fmt.Sprintf("Shuffle elision (%s, %d iterations, %d partitions)", cfg.Preset, cfg.Iterations, cfg.Partitions),
		Headers: []string{"query", "all exchanges", "elided", "speedup", "rows shuffled", "with elision", "saved", "exchanges skipped"},
	}
	for _, query := range queries {
		offCfg := dbspinner.Config{Parallel: true, DisableShuffleElision: true}
		offRows, offTime, offStats, err := deltaRun(g, cfg, offCfg, query.sql)
		if err != nil {
			return nil, err
		}
		onCfg := dbspinner.Config{Parallel: true, CheckShuffleElision: true}
		onRows, onTime, onStats, err := deltaRun(g, cfg, onCfg, query.sql)
		if err != nil {
			return nil, err
		}
		if why := sameRowSequence(offRows, onRows); why != "" {
			return nil, fmt.Errorf("shuffle elision changed the %s result: %s", query.name, why)
		}
		saved := "-"
		if offStats.RowsShuffled > 0 {
			saved = fmt.Sprintf("%.0f%%", 100*float64(offStats.RowsShuffled-onStats.RowsShuffled)/float64(offStats.RowsShuffled))
		}
		if query.vs {
			if onStats.ShufflesElided == 0 {
				return nil, fmt.Errorf("%s: the analysis licensed no elisions on a VS variant", query.name)
			}
			if onStats.RowsShuffled >= offStats.RowsShuffled {
				return nil, fmt.Errorf("%s: elision does not reduce shuffled rows (%d vs %d)",
					query.name, onStats.RowsShuffled, offStats.RowsShuffled)
			}
		}
		exp.Rows = append(exp.Rows, []string{
			query.name, ms(offTime), ms(onTime), speedup(offTime, onTime),
			fmt.Sprint(offStats.RowsShuffled), fmt.Sprint(onStats.RowsShuffled), saved,
			fmt.Sprint(onStats.ShufflesElided),
		})
	}
	exp.Notes = "Results are asserted byte-identical, row order included, with the dynamic co-location guard re-hashing every row consumed through a skipped exchange. 'Rows shuffled' counts every row routed by an exchange operator; the VS variants must strictly reduce it — their loop bodies join and aggregate on the key the loop provably keeps hash-distributed across the back-edge."
	return exp, nil
}

// IncAggComparison is the experiment behind incremental aggregate
// maintenance (Config.DisableIncrementalAgg): the full per-iteration
// re-fold vs group-granular maintenance on the workloads whose body
// aggregation the decomposability analysis licenses. The maintained
// runs execute with the dynamic cross-check armed, so a deterministic
// sample of cached groups is recomputed from scratch every iteration;
// the run fails if the two modes disagree on a single row or on row
// order — byte identity including float accumulation order is the
// maintenance contract. The interesting metric is aggregate input
// rows: the rows actually fed through the grouping operator, which
// maintenance must cut by at least 40% on both converging workloads
// once the change frontier shrinks.
func IncAggComparison(cfg Config) (*Experiment, error) {
	cfg = cfg.withDefaults()
	g, err := dataset(cfg)
	if err != nil {
		return nil, err
	}
	queries := []struct {
		name string
		sql  string
	}{
		{"PR", PRQuery(cfg.Iterations)},
		{"SSSP", SSSPQuery(1, cfg.Iterations)},
	}
	exp := &Experiment{
		ID:      "incagg",
		Title:   fmt.Sprintf("Incremental aggregate maintenance vs full re-fold (%s, %d iterations)", cfg.Preset, cfg.Iterations),
		Headers: []string{"query", "full re-fold", "maintained", "speedup", "agg rows (full)", "agg rows (maintained)", "rows saved"},
	}
	for _, query := range queries {
		fullRows, fullTime, _, err := deltaRun(g, cfg, dbspinner.Config{DisableIncrementalAgg: true}, query.sql)
		if err != nil {
			return nil, err
		}
		maintRows, maintTime, st, err := deltaRun(g, cfg, dbspinner.Config{CheckIncrementalAgg: true}, query.sql)
		if err != nil {
			return nil, err
		}
		if why := sameRowSequence(fullRows, maintRows); why != "" {
			return nil, fmt.Errorf("aggregate maintenance changed the %s result: %s", query.name, why)
		}
		if st.AggFullRows == 0 {
			return nil, fmt.Errorf("aggregate maintenance did not engage on %s (no maintained folds ran)", query.name)
		}
		saved := 100 * (1 - float64(st.AggInputRows)/float64(st.AggFullRows))
		if saved < 40 {
			return nil, fmt.Errorf("aggregate maintenance fed only %.1f%% fewer rows on %s, expected at least 40%%", saved, query.name)
		}
		exp.Rows = append(exp.Rows, []string{
			query.name, ms(fullTime), ms(maintTime), speedup(fullTime, maintTime),
			fmt.Sprint(st.AggFullRows), fmt.Sprint(st.AggInputRows),
			fmt.Sprintf("%.0f%%", saved),
		})
	}
	exp.Notes = "Results are asserted byte-identical, row order and float accumulation order included, with the dynamic cross-check recomputing a sample of cached groups from scratch every iteration. 'Agg rows' counts rows fed through the body's grouping operator summed over iterations: the whole join input every time vs the frontier-affected groups only."
	return exp, nil
}
