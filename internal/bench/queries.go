// Package bench is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (§VII) — workload setup,
// parameter sweeps, optimized and baseline configurations, and
// paper-style result rows.
package bench

import "fmt"

// PRQuery is the PageRank query of Figure 2.
func PRQuery(iterations int) string {
	return fmt.Sprintf(`WITH ITERATIVE PageRank (Node, Rank, Delta)
AS ( SELECT src, 0, 0.15
     FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
 ITERATE
  SELECT PageRank.node,
    PageRank.rank + PageRank.delta,
    0.85 * SUM(IncomingRank.delta * IncomingEdges.Weight)
  FROM PageRank
    LEFT JOIN edges AS IncomingEdges ON PageRank.node = IncomingEdges.dst
    LEFT JOIN PageRank AS IncomingRank ON IncomingRank.node = IncomingEdges.src
  GROUP BY PageRank.node, PageRank.rank + PageRank.delta
 UNTIL %d ITERATIONS )
SELECT Node, Rank FROM PageRank`, iterations)
}

// PRVSQuery is PR-VS (§V-A): PageRank over available nodes only.
func PRVSQuery(iterations int) string {
	return fmt.Sprintf(`WITH ITERATIVE PageRank (Node, Rank, Delta)
AS ( SELECT src, 0, 0.15
     FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
 ITERATE
  SELECT PageRank.node,
    PageRank.rank + PageRank.delta,
    0.85 * SUM(IncomingRank.delta * IncomingEdges.Weight)
  FROM PageRank
    LEFT JOIN edges AS IncomingEdges ON PageRank.node = IncomingEdges.dst
    LEFT JOIN PageRank AS IncomingRank ON IncomingRank.node = IncomingEdges.src
    JOIN vertexStatus AS avail_pr ON avail_pr.node = IncomingEdges.dst
  WHERE avail_pr.status != 0
  GROUP BY PageRank.node, PageRank.rank + PageRank.delta
 UNTIL %d ITERATIONS )
SELECT Node, Rank FROM PageRank`, iterations)
}

// SSSPVSQuery is the shortest-path query of Figure 7 with the
// availability join used in the Figure 9/11 experiments.
func SSSPVSQuery(source, iterations int) string {
	return fmt.Sprintf(`WITH ITERATIVE sssp (Node, Distance, Delta)
AS (SELECT src, 9999999, CASE WHEN src = %d THEN 0 ELSE 9999999 END
 FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
 ITERATE
  SELECT sssp.node,
    LEAST(sssp.distance, sssp.delta),
    COALESCE(MIN(IncomingDistance.delta + IncomingEdges.weight), 9999999)
  FROM sssp
   LEFT JOIN edges AS IncomingEdges ON sssp.node = IncomingEdges.dst
   LEFT JOIN sssp AS IncomingDistance ON IncomingDistance.node = IncomingEdges.src
   JOIN vertexStatus AS avail ON avail.node = IncomingEdges.dst
  WHERE IncomingDistance.Delta != 9999999 AND avail.status != 0
  GROUP BY sssp.node, LEAST(sssp.distance, sssp.delta)
 UNTIL %d ITERATIONS)
SELECT Node, Distance FROM sssp`, source, iterations)
}

// SSSPQuery is the plain Figure 7 query without the availability join.
func SSSPQuery(source, iterations int) string {
	return fmt.Sprintf(`WITH ITERATIVE sssp (Node, Distance, Delta)
AS (SELECT src, 9999999, CASE WHEN src = %d THEN 0 ELSE 9999999 END
 FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
 ITERATE
  SELECT sssp.node,
    LEAST(sssp.distance, sssp.delta),
    COALESCE(MIN(IncomingDistance.delta + IncomingEdges.weight), 9999999)
  FROM sssp
   LEFT JOIN edges AS IncomingEdges ON sssp.node = IncomingEdges.dst
   LEFT JOIN sssp AS IncomingDistance ON IncomingDistance.node = IncomingEdges.src
  WHERE IncomingDistance.Delta != 9999999
  GROUP BY sssp.node, LEAST(sssp.distance, sssp.delta)
 UNTIL %d ITERATIONS)
SELECT Node, Distance FROM sssp`, source, iterations)
}

// FFQuery is the friends-forecast query of Figure 6, parameterized by
// the selectivity modulus X in MOD(node, X) = 0 (X=2 keeps 50%% of the
// rows, X=100 keeps 1%%).
func FFQuery(iterations, mod int) string {
	return fmt.Sprintf(`WITH ITERATIVE forecast (node, friends, friendsPrev)
AS( SELECT src AS node, count(dst) AS friends,
      ceiling(count(dst) * (1.0-(src%%10)/100.0)) AS friendsPrev
    FROM edges GROUP BY src
 ITERATE
   SELECT node AS node,
      round(cast((friends / friendsPrev) * friends AS numeric), 5) AS friends,
      friends AS friendsPrev
   FROM forecast
 UNTIL %d ITERATIONS )
SELECT node, friends
FROM forecast WHERE MOD(node, %d) = 0
ORDER BY friends DESC LIMIT 10`, iterations, mod)
}
