package bench

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// tiny returns a config small enough for unit tests.
func tiny() Config {
	return Config{Preset: "dblp-small", Nodes: 300, Iterations: 3, Reps: 1, Partitions: 2}
}

func TestTableIExperiment(t *testing.T) {
	exp, err := TableI(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Step 1: Materialize PageRank", "Rename", "Go to step"} {
		if !strings.Contains(exp.Notes, frag) {
			t.Errorf("Table I missing %q:\n%s", frag, exp.Notes)
		}
	}
}

func TestFig8Experiment(t *testing.T) {
	exp, err := Fig8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Rows) != 2 {
		t.Fatalf("rows = %d", len(exp.Rows))
	}
	if exp.Rows[0][0] != "FF" || exp.Rows[1][0] != "PR" {
		t.Errorf("rows = %v", exp.Rows)
	}
}

func TestFig9Experiment(t *testing.T) {
	cfg := tiny()
	exp, err := Fig9(cfg, []string{"dblp-small"})
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Rows) != 2 {
		t.Fatalf("rows = %v", exp.Rows)
	}
}

func TestFig10Experiment(t *testing.T) {
	exp, err := Fig10(tiny(), []int{2, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Rows) != 2 {
		t.Fatalf("rows = %v", exp.Rows)
	}
	if !strings.Contains(exp.Rows[0][0], "50%") {
		t.Errorf("selectivity label: %v", exp.Rows[0])
	}
}

func TestFig11Experiment(t *testing.T) {
	exp, err := Fig11(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Rows) != 3 {
		t.Fatalf("rows = %v", exp.Rows)
	}
	names := []string{"PR-VS", "SSSP-VS", "FF (50%)"}
	for i, n := range names {
		if exp.Rows[i][0] != n {
			t.Errorf("row %d = %v", i, exp.Rows[i])
		}
	}
}

func TestMiddlewareExperiment(t *testing.T) {
	exp, err := MiddlewareAblation(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Rows) != 2 {
		t.Fatalf("rows = %v", exp.Rows)
	}
	stmts, err := strconv.Atoi(exp.Rows[0][2])
	if err != nil || stmts == 0 {
		t.Errorf("middleware statements = %v", exp.Rows[0])
	}
	if exp.Rows[1][2] != "0" {
		t.Errorf("native CTE should execute zero DML statements: %v", exp.Rows[1])
	}
}

func TestParallelScalingExperiment(t *testing.T) {
	exp, err := ParallelScaling(tiny(), []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Rows) != 2 {
		t.Fatalf("rows = %v", exp.Rows)
	}
}

// TestDeltaComparisonExperiment cements the delta-iteration acceptance
// criterion: on converging SSSP and PR-VS workloads the two modes
// produce identical rows (DeltaComparison errors out otherwise) while
// the restricted mode feeds strictly fewer rows to Ri.
func TestDeltaComparisonExperiment(t *testing.T) {
	cfg := tiny()
	cfg.Iterations = 5
	exp, err := DeltaComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Rows) != 2 || exp.Rows[0][0] != "SSSP" || exp.Rows[1][0] != "PR-VS" {
		t.Fatalf("rows = %v", exp.Rows)
	}
	for _, row := range exp.Rows {
		full, err1 := strconv.ParseInt(row[4], 10, 64)
		input, err2 := strconv.ParseInt(row[5], 10, 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("row counters not numeric: %v", row)
		}
		if input >= full {
			t.Errorf("%s: Ri consumed %d of %d rows; the frontier must shrink on a converging workload", row[0], input, full)
		}
	}
}

// TestSchedComparisonExperiment cements the step-scheduler acceptance
// criteria: all five workload queries run byte-identical with the
// scheduler on (SchedComparison errors out otherwise), and at least
// one schedule exposes a region of width > 1 — the common-result
// queries materialize the seed and the Common#1 block independently.
func TestSchedComparisonExperiment(t *testing.T) {
	cfg := tiny()
	cfg.Iterations = 5
	exp, err := SchedComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"PR", "PR-VS", "SSSP", "SSSP-VS", "FF (50%)"}
	if len(exp.Rows) != len(names) {
		t.Fatalf("rows = %v", exp.Rows)
	}
	widest := 0
	for i, row := range exp.Rows {
		if row[0] != names[i] {
			t.Errorf("row %d = %v, want %s", i, row, names[i])
		}
		w, err := strconv.Atoi(row[5])
		if err != nil {
			t.Fatalf("width not numeric: %v", row)
		}
		if w > widest {
			widest = w
		}
	}
	if widest < 2 {
		t.Errorf("no schedule wider than 1: %v", exp.Rows)
	}
	for _, vs := range []int{1, 3} { // PR-VS, SSSP-VS
		if exp.Rows[vs][5] == "1" {
			t.Errorf("%s schedule should have width > 1: %v", names[vs], exp.Rows[vs])
		}
	}
}

// TestIncAggComparisonExperiment cements the incremental-aggregate
// acceptance bar: PR and SSSP run byte-identical with maintenance on
// and off (IncAggComparison errors out otherwise, with the dynamic
// cross-check armed), and both cut aggregate input rows by at least
// 40% once the change frontier shrinks. PR's frontier thins slowly
// (deltas stop propagating only where every incoming path has died
// out), so this runs the full default iteration count rather than the
// short loop the other experiment tests use.
func TestIncAggComparisonExperiment(t *testing.T) {
	cfg := tiny()
	cfg.Iterations = 10
	exp, err := IncAggComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Rows) != 2 || exp.Rows[0][0] != "PR" || exp.Rows[1][0] != "SSSP" {
		t.Fatalf("rows = %v", exp.Rows)
	}
	for _, row := range exp.Rows {
		full, err1 := strconv.ParseInt(row[4], 10, 64)
		input, err2 := strconv.ParseInt(row[5], 10, 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("row counters not numeric: %v", row)
		}
		if input >= full {
			t.Errorf("%s: maintenance fed %d of %d rows; the frontier must shrink on a converging workload", row[0], input, full)
		}
	}
}

// TestFaultToleranceExperiment cements the fault-tolerance acceptance
// bar: checkpointing off/on byte-identical (FaultTolerance errors out
// otherwise), and the deterministically faulted run retries back to
// the same rows, recording at least one retry per scheduled fault.
func TestFaultToleranceExperiment(t *testing.T) {
	exp, err := FaultTolerance(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Rows) != 2 || exp.Rows[0][0] != "PR" || exp.Rows[1][0] != "SSSP" {
		t.Fatalf("rows = %v", exp.Rows)
	}
	for _, row := range exp.Rows {
		retries, err := strconv.ParseInt(row[5], 10, 64)
		if err != nil {
			t.Fatalf("retry counter not numeric: %v", row)
		}
		if retries < 2 {
			t.Errorf("%s: %d retries for a two-fault schedule", row[0], retries)
		}
	}
}

func TestRenderAndMarkdown(t *testing.T) {
	exp := &Experiment{
		ID:      "x",
		Title:   "demo",
		Headers: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   "note",
	}
	out := exp.Render()
	for _, frag := range []string{"== x: demo ==", "a", "333", "note", "---"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Render missing %q:\n%s", frag, out)
		}
	}
	md := exp.Markdown()
	for _, frag := range []string{"### x — demo", "| a | b |", "| 333 | 4 |"} {
		if !strings.Contains(md, frag) {
			t.Errorf("Markdown missing %q:\n%s", frag, md)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Preset != "dblp-small" || c.Iterations != 10 || c.Reps != 3 || c.Partitions != 4 || c.AvailFrac != 0.8 {
		t.Errorf("defaults = %+v", c)
	}
}

func TestHelpers(t *testing.T) {
	if ms(1500*time.Microsecond) != "1.5 ms" {
		t.Errorf("ms = %q", ms(1500*time.Microsecond))
	}
	if speedup(2*time.Second, time.Second) != "2.00x" {
		t.Error("speedup")
	}
	if improvement(2*time.Second, time.Second) != "50%" {
		t.Error("improvement")
	}
	if speedup(time.Second, 0) != "-" || improvement(0, time.Second) != "-" {
		t.Error("degenerate cases")
	}
}

func TestUnknownPreset(t *testing.T) {
	cfg := tiny()
	cfg.Preset = "nope"
	if _, err := Fig8(cfg); err == nil {
		t.Error("unknown preset should fail")
	}
}

// TestShuffleComparisonExperiment cements the shuffle-elision
// acceptance bar: results byte-identical with elision on and off
// (ShuffleComparison errors out otherwise, with the dynamic
// co-location guard armed), and both VS variants strictly reduce
// rows shuffled.
func TestShuffleComparisonExperiment(t *testing.T) {
	cfg := tiny()
	cfg.Iterations = 5
	exp, err := ShuffleComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"PR", "PR-VS", "SSSP", "SSSP-VS", "FF (50%)"}
	if len(exp.Rows) != len(names) {
		t.Fatalf("rows = %v", exp.Rows)
	}
	for i, row := range exp.Rows {
		if row[0] != names[i] {
			t.Errorf("row %d = %v, want %s", i, row, names[i])
		}
		if names[i] == "PR-VS" || names[i] == "SSSP-VS" {
			elided, err := strconv.Atoi(row[7])
			if err != nil || elided == 0 {
				t.Errorf("%s: no exchanges skipped: %v", names[i], row)
			}
		}
	}
}
