// Benchmarks regenerating every table and figure of the paper's
// evaluation (§VII). Run with:
//
//	go test -bench=. -benchmem
//
// Sub-benchmark names encode the experiment: BenchmarkFig8/FF/rename
// vs BenchmarkFig8/FF/copyback is the Figure 8 comparison, and so on.
// The cmd/benchrunner binary prints the same experiments as the
// paper-style tables with improvement percentages.
package dbspinner_test

import (
	"fmt"
	"testing"

	"dbspinner"
	"dbspinner/internal/bench"
	"dbspinner/internal/middleware"
	"dbspinner/internal/proc"
	"dbspinner/internal/workload"
)

// benchConfig is the shared workload scale: the dblp-small preset (the
// paper's DBLP graph scaled 1:79) with 10 iterations, matching the
// PR/SSSP experiments; Figure 10/11 use 25 iterations as in the paper.
var benchConfig = bench.Config{Preset: "dblp-small", Iterations: 10, Partitions: 4}

// engines are cached per (preset, engine-config) across benchmark
// iterations; building the graph dominates setup otherwise.
func newBenchEngine(b *testing.B, cfg bench.Config, ecfg dbspinner.Config) *dbspinner.Engine {
	b.Helper()
	g, err := benchGraph(cfg)
	if err != nil {
		b.Fatal(err)
	}
	e, err := bench.NewEngine(g, cfg, ecfg)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

var graphCache = map[string]*workload.Graph{}

func benchGraph(cfg bench.Config) (*workload.Graph, error) {
	key := fmt.Sprintf("%s/%d", cfg.Preset, cfg.Nodes)
	if g, ok := graphCache[key]; ok {
		return g, nil
	}
	p, ok := workload.Presets[cfg.Preset]
	if !ok {
		return nil, fmt.Errorf("unknown preset %q", cfg.Preset)
	}
	nodes := p.Nodes
	if cfg.Nodes > 0 {
		nodes = cfg.Nodes
	}
	g := workload.PreferentialAttachment(nodes, p.OutDeg, p.Mode, 42)
	graphCache[key] = g
	return g, nil
}

func runQuery(b *testing.B, e *dbspinner.Engine, sql string) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableI measures the rewrite itself: parsing the PR query and
// expanding it into the Table I step program.
func BenchmarkTableI_Rewrite(b *testing.B) {
	e := newBenchEngine(b, benchConfig, dbspinner.Config{})
	sql := bench.PRQuery(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Explain(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8 — minimizing data movement: rename vs copy-back.
func BenchmarkFig8(b *testing.B) {
	queries := map[string]string{
		"FF": bench.FFQuery(benchConfig.Iterations, 2),
		"PR": bench.PRQuery(benchConfig.Iterations),
	}
	for name, sql := range queries {
		b.Run(name+"/copyback", func(b *testing.B) {
			e := newBenchEngine(b, benchConfig, dbspinner.Config{DisableRenameOpt: true})
			runQuery(b, e, sql)
		})
		b.Run(name+"/rename", func(b *testing.B) {
			e := newBenchEngine(b, benchConfig, dbspinner.Config{})
			runQuery(b, e, sql)
		})
	}
}

// BenchmarkFig9 — common-result materialization on PR-VS and SSSP-VS
// over the DBLP-like and Pokec-like datasets.
func BenchmarkFig9(b *testing.B) {
	queries := map[string]string{
		"PR-VS":   bench.PRVSQuery(benchConfig.Iterations),
		"SSSP-VS": bench.SSSPVSQuery(1, benchConfig.Iterations),
	}
	for _, preset := range []string{"dblp-small", "pokec-small"} {
		cfg := benchConfig
		cfg.Preset = preset
		for name, sql := range queries {
			b.Run(fmt.Sprintf("%s/%s/baseline", name, preset), func(b *testing.B) {
				e := newBenchEngine(b, cfg, dbspinner.Config{DisableCommonResultOpt: true})
				runQuery(b, e, sql)
			})
			b.Run(fmt.Sprintf("%s/%s/common", name, preset), func(b *testing.B) {
				e := newBenchEngine(b, cfg, dbspinner.Config{})
				runQuery(b, e, sql)
			})
		}
	}
}

// BenchmarkFig10 — predicate push down on FF at 25 iterations across
// selectivities (1/X of the nodes survive MOD(node, X) = 0).
func BenchmarkFig10(b *testing.B) {
	cfg := benchConfig
	cfg.Iterations = 25
	for _, mod := range []int{2, 10, 100} {
		sql := bench.FFQuery(cfg.Iterations, mod)
		b.Run(fmt.Sprintf("sel=1of%d/baseline", mod), func(b *testing.B) {
			e := newBenchEngine(b, cfg, dbspinner.Config{DisablePredicatePushdown: true})
			runQuery(b, e, sql)
		})
		b.Run(fmt.Sprintf("sel=1of%d/pushed", mod), func(b *testing.B) {
			e := newBenchEngine(b, cfg, dbspinner.Config{})
			runQuery(b, e, sql)
		})
	}
}

// BenchmarkFig11 — optimized iterative CTEs vs stored procedures at 25
// iterations.
func BenchmarkFig11(b *testing.B) {
	cfg := benchConfig
	cfg.Iterations = 25
	items := []struct {
		name string
		sql  string
		mk   func() *proc.Procedure
	}{
		{"PR-VS", bench.PRVSQuery(cfg.Iterations), func() *proc.Procedure { return proc.PageRank(cfg.Iterations, true) }},
		{"SSSP-VS", bench.SSSPVSQuery(1, cfg.Iterations), func() *proc.Procedure { return proc.SSSP(1, cfg.Iterations, true) }},
		{"FF50", bench.FFQuery(cfg.Iterations, 2), func() *proc.Procedure { return proc.Forecast(cfg.Iterations, 2) }},
	}
	for _, it := range items {
		b.Run(it.name+"/storedproc", func(b *testing.B) {
			e := newBenchEngine(b, cfg, dbspinner.Config{})
			p := it.mk()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := proc.Run(e, p); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(it.name+"/cte", func(b *testing.B) {
			e := newBenchEngine(b, cfg, dbspinner.Config{})
			runQuery(b, e, it.sql)
		})
	}
}

// BenchmarkMiddleware — the §I/§II ablation: external middleware driver
// vs the native single plan.
func BenchmarkMiddleware(b *testing.B) {
	b.Run("middleware", func(b *testing.B) {
		e := newBenchEngine(b, benchConfig, dbspinner.Config{})
		c := middleware.NewClient(e)
		p := proc.PageRank(benchConfig.Iterations, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.RunIterative(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("native", func(b *testing.B) {
		e := newBenchEngine(b, benchConfig, dbspinner.Config{})
		runQuery(b, e, bench.PRQuery(benchConfig.Iterations))
	})
}

// BenchmarkParallel — MPP fragment execution vs the single-threaded
// volcano executor on the PR query.
func BenchmarkParallel(b *testing.B) {
	sql := bench.PRQuery(benchConfig.Iterations)
	b.Run("serial", func(b *testing.B) {
		e := newBenchEngine(b, benchConfig, dbspinner.Config{Partitions: 4})
		runQuery(b, e, sql)
	})
	for _, parts := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("parallel-%d", parts), func(b *testing.B) {
			e := newBenchEngine(b, benchConfig, dbspinner.Config{Partitions: parts, Parallel: true})
			runQuery(b, e, sql)
		})
	}
}

// BenchmarkRecursive — the recursive-CTE substrate (reachability) for
// context against the iterative path.
func BenchmarkRecursive(b *testing.B) {
	e := newBenchEngine(b, benchConfig, dbspinner.Config{})
	sql := `WITH RECURSIVE reach (node) AS (
		SELECT 1 UNION SELECT edges.dst FROM reach JOIN edges ON edges.src = reach.node
	) SELECT COUNT(*) FROM reach`
	runQuery(b, e, sql)
}
