package dbspinner_test

import (
	"fmt"

	"dbspinner"
)

// Example shows the minimal end-to-end flow: DDL, DML and an iterative
// CTE with a metadata termination condition.
func Example() {
	e := dbspinner.New(dbspinner.Config{})
	e.Exec(`CREATE TABLE seeds (k int, v int)`)
	e.Exec(`INSERT INTO seeds VALUES (1, 1)`)

	res, _ := e.Query(`
		WITH ITERATIVE doubling (k, v) AS (
			SELECT k, v FROM seeds
		ITERATE
			SELECT k, v * 2 FROM doubling
		UNTIL 10 ITERATIONS )
		SELECT v FROM doubling`)
	fmt.Println(res.Rows[0][0])
	// Output: 1024
}

// ExampleEngine_Explain prints the rewritten step program of an
// iterative query — the paper's Table I.
func ExampleEngine_Explain() {
	e := dbspinner.New(dbspinner.Config{})
	e.Exec(`CREATE TABLE t (x int)`)
	out, _ := e.Explain(`
		WITH ITERATIVE c (x) AS (
			SELECT x FROM t
		ITERATE
			SELECT x + 1 FROM c
		UNTIL 3 ITERATIONS )
		SELECT x FROM c`)
	fmt.Println(out[:len("Step 1: Materialize c")])
	// Output: Step 1: Materialize c
}

// ExampleEngine_Query_delta demonstrates the Delta termination
// condition: iterate to a fixed point.
func ExampleEngine_Query_delta() {
	e := dbspinner.New(dbspinner.Config{})
	e.Exec(`CREATE TABLE start (k int, v int)`)
	e.Exec(`INSERT INTO start VALUES (1, 0), (2, 5)`)

	res, _ := e.Query(`
		WITH ITERATIVE clamp (k, v) AS (
			SELECT k, v FROM start
		ITERATE
			SELECT k, LEAST(v + 1, 7) FROM clamp
		UNTIL DELTA < 1 )
		SELECT k, v FROM clamp ORDER BY k`)
	for _, row := range res.Rows {
		fmt.Println(row.String())
	}
	// Output:
	// 1, 7
	// 2, 7
}
