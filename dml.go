package dbspinner

import (
	"fmt"
	"strings"

	"dbspinner/internal/ast"
	"dbspinner/internal/exec"
	"dbspinner/internal/expr"
	"dbspinner/internal/plan"
	"dbspinner/internal/sqltypes"
	"dbspinner/internal/storage"
	"dbspinner/internal/txn"
)

// execStmt dispatches one DDL/DML statement. Every statement runs as
// its own autocommit transaction with table locks and WAL logging —
// the per-statement overhead that middleware and stored-procedure
// solutions pay and a single iterative-CTE plan avoids.
func (e *Engine) execStmt(stmt ast.Statement) (int64, error) {
	e.stats.Statements++
	switch t := stmt.(type) {
	case *ast.CreateTable:
		return e.execCreate(t)
	case *ast.DropTable:
		return e.execDrop(t)
	case *ast.Insert:
		return e.execInsert(t)
	case *ast.Update:
		return e.execUpdate(t)
	case *ast.Delete:
		return e.execDelete(t)
	case *ast.SelectStmt:
		return 0, fmt.Errorf("use Query for SELECT statements")
	case *ast.Explain:
		return 0, fmt.Errorf("use Explain for EXPLAIN statements")
	}
	return 0, fmt.Errorf("unsupported statement %T", stmt)
}

func (e *Engine) execCreate(ct *ast.CreateTable) (int64, error) {
	if ct.IfNotExists && e.cat.Get(ct.Name) != nil {
		return 0, nil
	}
	schema := make(sqltypes.Schema, len(ct.Cols))
	pk := -1
	for i, c := range ct.Cols {
		schema[i] = sqltypes.Column{Name: c.Name, Type: c.Type}
		if c.PrimaryKey {
			if pk >= 0 {
				return 0, fmt.Errorf("table %q declares multiple primary keys", ct.Name)
			}
			pk = i
		}
	}
	tx := e.txn.Begin()
	defer tx.Abort()
	tx.Lock(strings.ToLower(ct.Name), txn.Exclusive)
	if _, err := e.cat.Create(ct.Name, schema, pk); err != nil {
		return 0, err
	}
	tx.LogDDL(ct.Name)
	return 0, tx.Commit()
}

func (e *Engine) execDrop(dt *ast.DropTable) (int64, error) {
	tx := e.txn.Begin()
	defer tx.Abort()
	tx.Lock(strings.ToLower(dt.Name), txn.Exclusive)
	if err := e.cat.Drop(dt.Name, dt.IfExists); err != nil {
		return 0, err
	}
	tx.LogDDL(dt.Name)
	return 0, tx.Commit()
}

func (e *Engine) execInsert(ins *ast.Insert) (int64, error) {
	t := e.cat.Get(ins.Table)
	if t == nil {
		return 0, fmt.Errorf("table %q does not exist", ins.Table)
	}
	// Map the column list to positions (all columns when omitted).
	colIdx := make([]int, 0, len(t.Schema))
	if len(ins.Cols) == 0 {
		for i := range t.Schema {
			colIdx = append(colIdx, i)
		}
	} else {
		for _, name := range ins.Cols {
			idx := t.Schema.ColumnIndex(name)
			if idx < 0 {
				return 0, fmt.Errorf("column %q does not exist in %q", name, ins.Table)
			}
			colIdx = append(colIdx, idx)
		}
	}

	var srcRows []sqltypes.Row
	switch {
	case ins.Select != nil:
		node, err := plan.NewBuilder(e.rt).Build(ins.Select)
		if err != nil {
			return 0, err
		}
		if len(node.Columns()) != len(colIdx) {
			return 0, fmt.Errorf("INSERT has %d target columns but the query produces %d", len(colIdx), len(node.Columns()))
		}
		var es exec.Stats
		srcRows, err = exec.Run(node, e.rt, &es)
		if err != nil {
			return 0, err
		}
		e.absorbExecStats(&es)
	default:
		emptyEnv := &expr.Env{}
		for _, exprRow := range ins.Rows {
			if len(exprRow) != len(colIdx) {
				return 0, fmt.Errorf("INSERT row has %d values, expected %d", len(exprRow), len(colIdx))
			}
			row := make(sqltypes.Row, len(exprRow))
			for i, ex := range exprRow {
				c, err := expr.Compile(ex, emptyEnv)
				if err != nil {
					return 0, err
				}
				v, err := c.Eval(nil)
				if err != nil {
					return 0, err
				}
				row[i] = v
			}
			srcRows = append(srcRows, row)
		}
	}

	// Widen to full rows, cast to declared types.
	full := make([]sqltypes.Row, len(srcRows))
	for i, src := range srcRows {
		row := make(sqltypes.Row, len(t.Schema))
		for j := range row {
			row[j] = sqltypes.NullValue
		}
		for j, idx := range colIdx {
			v, err := sqltypes.Cast(src[j], t.Schema[idx].Type)
			if err != nil {
				return 0, fmt.Errorf("column %s: %w", t.Schema[idx].Name, err)
			}
			row[idx] = v
		}
		full[i] = row
	}

	tx := e.txn.Begin()
	defer tx.Abort()
	tx.Lock(strings.ToLower(ins.Table), txn.Exclusive)
	tx.LogInsert(ins.Table, full...)
	t.InsertBatch(full)
	return int64(len(full)), tx.Commit()
}

func (e *Engine) execDelete(del *ast.Delete) (int64, error) {
	t := e.cat.Get(del.Table)
	if t == nil {
		return 0, fmt.Errorf("table %q does not exist", del.Table)
	}
	tx := e.txn.Begin()
	defer tx.Abort()
	tx.Lock(strings.ToLower(del.Table), txn.Exclusive)

	var cond *expr.Compiled
	if del.Where != nil {
		env := expr.NewEnv(del.Table, t.Schema)
		var err error
		cond, err = expr.Compile(del.Where, env)
		if err != nil {
			return 0, err
		}
	}
	var removed int64
	for pi, part := range t.Parts {
		kept := part[:0]
		for _, r := range part {
			del := true
			if cond != nil {
				v, err := cond.Eval(r)
				if err != nil {
					return 0, err
				}
				del = sqltypes.TriOf(v) == sqltypes.TriTrue
			}
			if del {
				tx.LogDelete(t.Name, r)
				removed++
			} else {
				kept = append(kept, r)
			}
		}
		t.Parts[pi] = kept
	}
	return removed, tx.Commit()
}

// execUpdate implements UPDATE t SET ... [FROM src] [WHERE cond],
// including the PostgreSQL-style UPDATE ... FROM join used by the
// external baseline (Figure 1). The FROM side is hashed on the
// equality conjuncts of WHERE, so the update is a hash join rather
// than a quadratic scan.
func (e *Engine) execUpdate(u *ast.Update) (int64, error) {
	t := e.cat.Get(u.Table)
	if t == nil {
		return 0, fmt.Errorf("table %q does not exist", u.Table)
	}
	alias := u.Alias
	if alias == "" {
		alias = u.Table
	}
	targetEnv := expr.NewEnv(alias, t.Schema)

	// Resolve SET target columns.
	setIdx := make([]int, len(u.Sets))
	for i, s := range u.Sets {
		idx := t.Schema.ColumnIndex(s.Col)
		if idx < 0 {
			return 0, fmt.Errorf("column %q does not exist in %q", s.Col, u.Table)
		}
		setIdx[i] = idx
	}

	tx := e.txn.Begin()
	defer tx.Abort()
	tx.Lock(strings.ToLower(u.Table), txn.Exclusive)

	if u.From == nil {
		return e.updateInPlace(tx, t, u, targetEnv, setIdx)
	}
	return e.updateFromJoin(tx, t, u, alias, targetEnv, setIdx)
}

func (e *Engine) updateInPlace(tx *txn.Txn, t *storage.Table, u *ast.Update, env *expr.Env, setIdx []int) (int64, error) {
	var cond *expr.Compiled
	var err error
	if u.Where != nil {
		cond, err = expr.Compile(u.Where, env)
		if err != nil {
			return 0, err
		}
	}
	setEx := make([]*expr.Compiled, len(u.Sets))
	for i, s := range u.Sets {
		setEx[i], err = expr.Compile(s.Expr, env)
		if err != nil {
			return 0, err
		}
	}
	var updated int64
	for _, part := range t.Parts {
		for ri, r := range part {
			if cond != nil {
				v, err := cond.Eval(r)
				if err != nil {
					return 0, err
				}
				if sqltypes.TriOf(v) != sqltypes.TriTrue {
					continue
				}
			}
			nr := r.Clone()
			for i, c := range setEx {
				v, err := c.Eval(r)
				if err != nil {
					return 0, err
				}
				cv, err := sqltypes.Cast(v, t.Schema[setIdx[i]].Type)
				if err != nil {
					return 0, err
				}
				nr[setIdx[i]] = cv
			}
			tx.LogUpdate(t.Name, r, nr)
			part[ri] = nr
			updated++
		}
	}
	return updated, tx.Commit()
}

func (e *Engine) updateFromJoin(tx *txn.Txn, t *storage.Table, u *ast.Update, alias string, targetEnv *expr.Env, setIdx []int) (int64, error) {
	// Plan and run the FROM side through the ordinary builder.
	fromSel := &ast.SelectStmt{Body: &ast.SelectCore{
		Items: []ast.SelectItem{{Expr: &ast.Star{}}},
		From:  u.From,
	}}
	node, err := plan.NewBuilder(e.rt).Build(fromSel)
	if err != nil {
		return 0, err
	}
	var es exec.Stats
	fromRows, err := exec.Run(node, e.rt, &es)
	if err != nil {
		return 0, err
	}
	e.absorbExecStats(&es)

	// Combined environment: target columns then FROM columns (the FROM
	// plan's own qualifiers are preserved through the projection names,
	// so re-derive them from the plan's pre-projection columns).
	fromCols := node.Columns()
	combined := &expr.Env{}
	for i, b := range targetEnv.Cols {
		_ = i
		combined.Cols = append(combined.Cols, b)
	}
	base := len(targetEnv.Cols)
	fromOnly := &expr.Env{}
	for i, c := range fromColumnBindings(u.From, fromCols) {
		b := c
		b.Index = base + i
		combined.Cols = append(combined.Cols, b)
		c.Index = i
		fromOnly.Cols = append(fromOnly.Cols, c)
	}

	if u.Where == nil {
		return 0, fmt.Errorf("UPDATE ... FROM requires a WHERE clause correlating the tables")
	}

	// Split WHERE into hash keys (target = from equalities) and
	// residual conjuncts.
	var tKeys, fKeys []*expr.Compiled
	var resids []ast.Expr
	for _, conj := range ast.SplitConjuncts(u.Where) {
		b, ok := conj.(*ast.BinaryExpr)
		if ok && b.Op == "=" {
			lT, lErr := expr.Compile(b.L, targetEnv)
			rF, rErr := expr.Compile(b.R, fromOnly)
			if lErr == nil && rErr == nil {
				tKeys = append(tKeys, lT)
				fKeys = append(fKeys, rF)
				continue
			}
			lF, lErr2 := expr.Compile(b.L, fromOnly)
			rT, rErr2 := expr.Compile(b.R, targetEnv)
			if lErr2 == nil && rErr2 == nil {
				tKeys = append(tKeys, rT)
				fKeys = append(fKeys, lF)
				continue
			}
		}
		resids = append(resids, conj)
	}
	if len(tKeys) == 0 {
		return 0, fmt.Errorf("UPDATE ... FROM requires at least one equality between %s and the FROM tables", u.Table)
	}
	var residual *expr.Compiled
	if rem := ast.JoinConjuncts(resids); rem != nil {
		var err error
		residual, err = expr.Compile(rem, combined)
		if err != nil {
			return 0, err
		}
	}
	setEx := make([]*expr.Compiled, len(u.Sets))
	for i, s := range u.Sets {
		setEx[i], err = expr.Compile(s.Expr, combined)
		if err != nil {
			return 0, err
		}
	}

	// Hash the FROM rows.
	build := make(map[sqltypes.CompositeKey][]sqltypes.Row, len(fromRows))
	for _, fr := range fromRows {
		key, null, err := evalKeyRow(fKeys, fr)
		if err != nil {
			return 0, err
		}
		if null {
			continue
		}
		build[key] = append(build[key], fr)
	}

	var updated int64
	for _, part := range t.Parts {
		for ri, r := range part {
			key, null, err := evalKeyRow(tKeys, r)
			if err != nil {
				return 0, err
			}
			if null {
				continue
			}
			for _, fr := range build[key] {
				combinedRow := make(sqltypes.Row, 0, len(r)+len(fr))
				combinedRow = append(combinedRow, r...)
				combinedRow = append(combinedRow, fr...)
				if residual != nil {
					v, err := residual.Eval(combinedRow)
					if err != nil {
						return 0, err
					}
					if sqltypes.TriOf(v) != sqltypes.TriTrue {
						continue
					}
				}
				nr := r.Clone()
				for i, c := range setEx {
					v, err := c.Eval(combinedRow)
					if err != nil {
						return 0, err
					}
					cv, err := sqltypes.Cast(v, t.Schema[setIdx[i]].Type)
					if err != nil {
						return 0, err
					}
					nr[setIdx[i]] = cv
				}
				tx.LogUpdate(t.Name, r, nr)
				part[ri] = nr
				updated++
				break // first match wins, as in PostgreSQL
			}
		}
	}
	return updated, tx.Commit()
}

// fromColumnBindings derives qualified bindings for the FROM side of
// an UPDATE by pairing the flattened source tables with the star
// projection's output.
func fromColumnBindings(from ast.TableRef, projected []plan.ColInfo) []expr.Binding {
	// The star projection preserves column order: walk the FROM tree
	// left to right, assigning qualifiers.
	var quals []string
	var walk func(t ast.TableRef)
	walk = func(t ast.TableRef) {
		switch x := t.(type) {
		case *ast.JoinRef:
			walk(x.Left)
			walk(x.Right)
		case *ast.BaseTable:
			a := x.Alias
			if a == "" {
				a = x.Name
			}
			quals = append(quals, strings.ToLower(a))
		case *ast.SubqueryRef:
			quals = append(quals, strings.ToLower(x.Alias))
		}
	}
	walk(from)
	out := make([]expr.Binding, len(projected))
	qi := 0
	_ = qi
	// The projection loses per-table grouping; fall back to a single
	// qualifier when exactly one table is present, and unqualified
	// names otherwise (standard for UPDATE ... FROM with one source).
	qual := ""
	if len(quals) == 1 {
		qual = quals[0]
	}
	for i, c := range projected {
		out[i] = expr.Binding{Table: qual, Name: strings.ToLower(c.Name), Index: i, Type: c.Type}
	}
	return out
}

func evalKeyRow(keys []*expr.Compiled, r sqltypes.Row) (sqltypes.CompositeKey, bool, error) {
	vals := make(sqltypes.Row, len(keys))
	for i, k := range keys {
		v, err := k.Eval(r)
		if err != nil {
			return sqltypes.CompositeKey{}, false, err
		}
		if v.IsNull() {
			return sqltypes.CompositeKey{}, true, nil
		}
		vals[i] = v
	}
	cols := make([]int, len(vals))
	for i := range cols {
		cols[i] = i
	}
	return sqltypes.RowKey(vals, cols), false, nil
}
